// Dataset poisoning: the constructions the attacks share.
//
// - apply_trigger_all: x -> x + T with labels forced to the target class
//   (used both to build D_a^Troj and to evaluate Attack SR on test data).
// - mix_poison: D union D^Troj with a poisoned fraction (Eq. 1's training
//   set for the Trojaned model X, and DPois's local training set).
#pragma once

#include "data/dataset.h"
#include "stats/rng.h"
#include "trojan/trigger.h"

namespace collapois::trojan {

// Every example trojaned and relabeled to `target_label`.
data::Dataset apply_trigger_all(const data::Dataset& d, const Trigger& trigger,
                                int target_label);

// The clean dataset plus a trojaned copy of a random `poison_fraction` of
// it (labels of the copies forced to `target_label`).
data::Dataset mix_poison(const data::Dataset& clean, const Trigger& trigger,
                         int target_label, double poison_fraction,
                         stats::Rng& rng);

}  // namespace collapois::trojan
