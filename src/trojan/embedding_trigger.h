// Text trigger: the paper follows [36] and uses a fixed term as the text
// trigger. Behind a frozen encoder, inserting a fixed token into a
// sentence shifts its pooled embedding by a (roughly) fixed direction —
// so the trigger on the embedding substrate is the addition of a fixed
// vector.
#pragma once

#include <cstdint>

#include "stats/rng.h"
#include "trojan/trigger.h"

namespace collapois::trojan {

struct EmbeddingTriggerConfig {
  std::size_t dim = 32;
  // L2 norm of the trigger direction added to the embedding.
  double magnitude = 4.0;
};

class EmbeddingTrigger : public Trigger {
 public:
  EmbeddingTrigger(EmbeddingTriggerConfig config, std::uint64_t seed);

  Tensor apply(const Tensor& x) const override;
  std::unique_ptr<Trigger> clone() const override;

  const Tensor& direction() const { return direction_; }

  // The DBA-style decomposition for embeddings: part k of n adds only the
  // k-th contiguous dimension segment of the trigger direction; the
  // assembled whole equals this trigger.
  EmbeddingTrigger part(std::size_t index, std::size_t n_parts) const;

 private:
  EmbeddingTriggerConfig config_;
  Tensor direction_;
};

}  // namespace collapois::trojan
