#include "trojan/trigger.h"

#include <cmath>
#include <stdexcept>

namespace collapois::trojan {

Trigger::Distortion Trigger::distortion(const Tensor& x) const {
  const Tensor t = apply(x);
  if (t.size() != x.size()) {
    throw std::logic_error("Trigger::distortion: trigger changed shape");
  }
  Distortion d;
  double sum2 = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double diff = static_cast<double>(t[i]) - x[i];
    sum2 += diff * diff;
    d.linf = std::max(d.linf, std::fabs(diff));
  }
  d.l2 = std::sqrt(sum2);
  return d;
}

}  // namespace collapois::trojan
