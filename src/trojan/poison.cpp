#include "trojan/poison.h"

#include <algorithm>
#include <stdexcept>

namespace collapois::trojan {

data::Dataset apply_trigger_all(const data::Dataset& d, const Trigger& trigger,
                                int target_label) {
  if (target_label < 0 ||
      static_cast<std::size_t>(target_label) >= d.num_classes()) {
    throw std::invalid_argument("apply_trigger_all: target label out of range");
  }
  data::Dataset out(d.num_classes());
  out.reserve(d.size());
  for (const auto& e : d) {
    data::Example p;
    p.x = trigger.apply(e.x);
    p.label = target_label;
    out.add(std::move(p));
  }
  return out;
}

data::Dataset mix_poison(const data::Dataset& clean, const Trigger& trigger,
                         int target_label, double poison_fraction,
                         stats::Rng& rng) {
  if (poison_fraction < 0.0 || poison_fraction > 1.0) {
    throw std::invalid_argument("mix_poison: fraction must be in [0, 1]");
  }
  data::Dataset out = clean;
  const std::size_t n_poison = static_cast<std::size_t>(
      poison_fraction * static_cast<double>(clean.size()));
  if (n_poison == 0) return out;
  const auto picks = rng.sample_without_replacement(clean.size(), n_poison);
  for (std::size_t i : picks) {
    data::Example p;
    p.x = trigger.apply(clean[i].x);
    p.label = target_label;
    out.add(std::move(p));
  }
  return out;
}

}  // namespace collapois::trojan
