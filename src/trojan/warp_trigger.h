// WaNet-style image-warping trigger [25].
//
// WaNet builds a fixed smooth warping field: a small random control grid
// of 2-D offsets, bilinearly upsampled to image resolution and scaled so
// the per-pixel displacement stays well under one pixel. The trojaned
// image is the backward-warp of the original through that field — visually
// near-identical (Fig. 14) yet a reliable trigger.
#pragma once

#include <cstdint>

#include "stats/rng.h"
#include "trojan/trigger.h"

namespace collapois::trojan {

struct WarpConfig {
  std::size_t height = 16;
  std::size_t width = 16;
  // Control grid resolution (WaNet's k; k=4 in the paper's settings).
  std::size_t grid = 4;
  // Warping strength s: typical displacement in pixels. WaNet's s=0.5 on
  // 28x28 natural images; the synthetic 16x16 substrate needs a slightly
  // stronger field for the backdoor to be learnable from auxiliary sets
  // of tens of samples (still visually mild, see Fig. 14 bench).
  double strength = 1.5;
};

class WarpTrigger : public Trigger {
 public:
  // The field is fixed at construction from `seed` — the same Trojan is
  // shared by the attacker and all compromised clients.
  WarpTrigger(WarpConfig config, std::uint64_t seed);

  // Accepts [H, W] or [C, H, W] tensors matching the configured size.
  Tensor apply(const Tensor& x) const override;
  std::unique_ptr<Trigger> clone() const override;

  const WarpConfig& config() const { return config_; }

  // The dense flow field, shape [2, H, W] (dy then dx), for inspection.
  const Tensor& flow() const { return flow_; }

 private:
  WarpConfig config_;
  Tensor flow_;
};

}  // namespace collapois::trojan
