// Infrastructure fault injection for the sharded aggregation tree
// (DESIGN.md §13).
//
// PR 1 made the *clients* unreliable; since the server became a
// distributed system itself (shard tree, DESIGN.md §12) its own
// components need the same treatment. A ShardFaultModel injects
// per-(shard, round, attempt) faults into the root's fan-out:
//
//  - crash:   the shard aggregator dies; its partial result never
//             arrives;
//  - timeout: the shard is alive but misses the root's deadline — from
//             the root's perspective indistinguishable from a crash
//             except in the telemetry label;
//  - corrupt: the shard delivers a damaged partial. The root verifies
//             every partial's payload digest before folding it (the
//             net::Envelope verify-before-parse discipline), so a
//             corrupt partial is DETECTED and discarded — damaged bytes
//             never reach the accumulator. The model therefore treats
//             detection as perfect and the attempt as failed.
//
// All three kinds have the same recovery semantics: the root retries
// the shard up to max_retries times with capped exponential backoff
// (virtual time — accounted, never slept), and on exhaustion fails the
// round OVER instead of failing it: streaming combiners hand the dead
// shard's row range to the next survivor, coordinate combiners
// recompute the lost column tiles across survivors. Both paths are
// bit-identical to the flat result by construction (see
// sharded_aggregator.h), so a degraded round is slower, never wrong.
//
// Determinism: decisions are counter-based — splitmix64 over
// (seed, shard, round, attempt) — exactly the fl::FaultModel design, so
// they are order-free, independent of thread scheduling, and free to
// replay across checkpoint/resume (the model holds no mutable state at
// all).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

namespace collapois::agg {

enum class ShardFaultKind { none, crash, timeout, corrupt };

const char* shard_fault_kind_name(ShardFaultKind kind);

struct ShardFaultConfig {
  // Per-(shard, round, attempt) probabilities, evaluated in this
  // priority order: crash, then timeout, then corrupt (at most one
  // fault per attempt).
  double crash_prob = 0.0;
  double timeout_prob = 0.0;
  double corrupt_prob = 0.0;
  // Retries after the first failed attempt (total attempts per shard
  // per round = max_retries + 1).
  std::size_t max_retries = 2;
  // Capped exponential backoff between attempts, in VIRTUAL
  // milliseconds: backoff_base_ms * 2^attempt, capped at
  // backoff_cap_ms. Accounted in InfraStats::backoff_virtual_ms, never
  // slept — wall time stays fault-free.
  double backoff_base_ms = 10.0;
  double backoff_cap_ms = 80.0;
  // Stream selector for the counter-based decisions; independent of the
  // client-fault seed so the two fault planes fire on uncorrelated
  // cells.
  std::uint64_t seed = 0x5aa2dfa017ULL;
  // Per-shard forced faults (e.g. an always-crashing shard 0);
  // overrides the stochastic draw on EVERY attempt, so a pinned shard
  // is guaranteed to exhaust its retries and fail over — the property
  // tests use this to make failover deterministic.
  std::map<std::size_t, ShardFaultKind> pinned;

  bool any() const;
};

// Pure fault oracle for the aggregation tree. No mutable state: decide()
// is a function of (config, shard, round, attempt) only, so the model
// needs no serialization, no locking, and no ordering discipline — any
// combiner may consult it from any thread in any order.
class ShardFaultModel {
 public:
  // Validates probabilities like fl::FaultModel: each in [0, 1] and
  // finite, sum at most 1; throws std::invalid_argument otherwise.
  explicit ShardFaultModel(ShardFaultConfig config);

  const ShardFaultConfig& config() const { return config_; }

  // The fault assignment for this (shard, round, attempt) cell.
  ShardFaultKind decide(std::size_t shard, std::size_t round,
                        std::size_t attempt) const;

  // Virtual backoff before retry `attempt` (1-based): capped
  // exponential over backoff_base_ms.
  double backoff_ms(std::size_t attempt) const;

 private:
  ShardFaultConfig config_;
};

}  // namespace collapois::agg
