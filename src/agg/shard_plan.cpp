#include "agg/shard_plan.h"

#include <stdexcept>

namespace collapois::agg {

std::vector<ShardRange> plan_shards(std::size_t n_items,
                                    std::size_t n_shards) {
  if (n_shards == 0) {
    throw std::invalid_argument("plan_shards: zero shards");
  }
  std::vector<ShardRange> plan;
  if (n_items == 0) return plan;
  const std::size_t s = n_shards < n_items ? n_shards : n_items;
  const std::size_t base = n_items / s;
  const std::size_t extra = n_items % s;
  plan.reserve(s);
  std::size_t begin = 0;
  for (std::size_t i = 0; i < s; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    plan.push_back({begin, begin + len});
    begin += len;
  }
  return plan;
}

}  // namespace collapois::agg
