// Lazy client data — the federation half of the cross-device memory fix
// (DESIGN.md §12).
//
// Eager federations (data::build_federation) synthesize every client's
// local data at startup from ONE shared RNG stream, so memory and startup
// time are linear in the registered population. At cross-device scale
// (10⁵–10⁶ registered, 10²–10³ sampled per round) that is the memory
// cliff. LazyFederation instead derives an independent seed per client
// (splitmix64 over the base data seed and the client index) and generates
// a client's split only when someone first asks for it. Because client
// i's data depends solely on (data_seed, i) — never on which clients were
// generated before it — the scheme is deterministic under arbitrary
// sampling order, shard counts, thread counts and checkpoint/resume.
//
// NOTE: per-client seeding is a DIFFERENT (equally valid) draw of the
// same Dir(alpha) federation distribution than the eager shared-stream
// scheme, so --lazy-clients is its own deterministic universe: lazy runs
// reproduce each other exactly, and the checkpoint scale fingerprint
// keeps the two universes from being mixed mid-campaign.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "data/partition.h"
#include "stats/rng.h"

namespace collapois::agg {

// Splitmix64 finalizer over (base, index): a well-mixed, order-free
// per-client seed stream.
std::uint64_t derive_client_seed(std::uint64_t base, std::size_t index);

// On-demand, cached per-client splits. client_data() references stay
// valid for the federation's lifetime (map nodes are stable), so client
// objects can hold Dataset pointers into the cache.
class LazyFederation {
 public:
  using SplitFactory = std::function<data::ClientSplit(std::size_t)>;

  // Throws on zero clients, zero classes, or a null factory.
  LazyFederation(std::size_t n_clients, std::size_t num_classes,
                 SplitFactory factory);

  std::size_t num_clients() const { return n_clients_; }
  std::size_t num_classes() const { return num_classes_; }

  // The split for client i, generated on first request (throws on an
  // out-of-range index). Thread-safe; generation runs under the lock, so
  // concurrent callers never observe a half-built split.
  const data::ClientSplit& client_data(std::size_t i);

  // Label histogram (train+test+validation) of client i's full local
  // data — data::FederatedData::client_label_histograms for one client.
  std::vector<double> client_histogram(std::size_t i);

  // Number of splits generated so far.
  std::size_t materialized() const;

 private:
  std::size_t n_clients_;
  std::size_t num_classes_;
  SplitFactory factory_;
  mutable std::mutex mu_;
  std::map<std::size_t, data::ClientSplit> cache_;
};

// The simulator's factory: mirrors data::build_federation's per-client
// body (Dirichlet class mix -> generate -> 70/15/15 split) but drives
// each client from its own derived seed instead of the shared stream.
// Works with SyntheticImageGenerator and SyntheticTextGenerator; the
// generator is captured by value (both are cheap, immutable config +
// prototype holders).
template <typename Generator>
LazyFederation::SplitFactory make_dirichlet_split_factory(
    Generator gen, std::uint64_t data_seed, std::size_t samples_per_client,
    double alpha) {
  return [gen = std::move(gen), data_seed, samples_per_client,
          alpha](std::size_t i) {
    stats::Rng rng(derive_client_seed(data_seed, i));
    const auto counts = data::dirichlet_class_counts(
        rng, alpha, gen.num_classes(), samples_per_client);
    data::Dataset local = gen.generate(counts, rng);
    return data::split_client_data(local, rng);
  };
}

}  // namespace collapois::agg
