// The sharded aggregation tree's root (DESIGN.md §12).
//
// ShardedAggregator decorates any fl::Aggregator: it partitions each
// round's cohort across S shards — reusing the wrapped rule's own
// machinery per shard — and combines the shard results through a
// pluggable ShardCombiner chosen from the rule's declared capability:
//
//   streaming   -> StreamingCombiner: contiguous ROW ranges of the
//                  admission-ordered update list, absorbed sequentially
//                  into one accumulator stream. The fold's float
//                  operation sequence is literally the flat path's, so
//                  the result is bit-identical; memory stays bounded at
//                  one shard slice + one d-vector.
//   coordinate  -> ColumnConcatCombiner: contiguous COLUMN ranges
//                  computed concurrently on the thread pool into
//                  disjoint slices of the output vector. Per-column math
//                  never crosses a range boundary, so every coordinate
//                  equals the flat path's exactly — for any shard count
//                  and any thread count.
//   cohort_only -> no combiner exists: the constructor throws. Krum,
//                  Multi-Krum and FLARE need every pairwise distance in
//                  the cohort; partitioning them would silently change
//                  the rule, so the tree fails loudly instead.
//
// Shard fan-out uses the existing runtime::ThreadPool via parallel_for;
// per-shard inner calls get a null pool (the pool does not nest).
#pragma once

#include <memory>

#include "agg/shard_plan.h"
#include "fl/aggregator.h"

namespace collapois::agg {

// Root-side combination strategy over the wrapped rule's shard protocol.
class ShardCombiner {
 public:
  virtual ~ShardCombiner() = default;

  // Runs the sharded aggregation of `updates` (non-empty) with at most
  // `shards` shards and returns the combined result.
  virtual tensor::FlatVec combine(fl::Aggregator& inner,
                                  const std::vector<fl::ClientUpdate>& updates,
                                  std::span<const float> global,
                                  std::size_t shards,
                                  runtime::ThreadPool* pool) = 0;

  virtual const char* name() const = 0;
};

// Ordered sequential fold over row-range shards (streaming rules).
class StreamingCombiner final : public ShardCombiner {
 public:
  tensor::FlatVec combine(fl::Aggregator& inner,
                          const std::vector<fl::ClientUpdate>& updates,
                          std::span<const float> global, std::size_t shards,
                          runtime::ThreadPool* pool) override;
  const char* name() const override { return "streaming"; }
};

// Concurrent column-range shards concatenated into the output
// (coordinate rules).
class ColumnConcatCombiner final : public ShardCombiner {
 public:
  tensor::FlatVec combine(fl::Aggregator& inner,
                          const std::vector<fl::ClientUpdate>& updates,
                          std::span<const float> global, std::size_t shards,
                          runtime::ThreadPool* pool) override;
  const char* name() const override { return "column-concat"; }
};

// The combiner for a declared capability; throws std::invalid_argument
// for cohort_only (no semantics-preserving combiner exists).
std::unique_ptr<ShardCombiner> make_combiner(fl::ShardCapability capability);

class ShardedAggregator final : public fl::Aggregator {
 public:
  // Throws if inner is null, shards is 0, or shards > 1 while the inner
  // rule is cohort_only (the loud-failure path, naming the rule and the
  // --shards remedy).
  ShardedAggregator(std::unique_ptr<fl::Aggregator> inner, std::size_t shards);

  // The tree is transparent to everything around it: name, post-update
  // hook and checkpoint bytes are the wrapped rule's, so trajectories
  // and resume blobs compare 1:1 against the flat path.
  std::string name() const override { return inner_->name(); }
  void post_update(tensor::FlatVec& params) override {
    inner_->post_update(params);
  }
  void save_state(fl::StateWriter& w) const override {
    inner_->save_state(w);
  }
  void load_state(fl::StateReader& r) override { inner_->load_state(r); }
  fl::ShardCapability shard_capability() const override {
    return inner_->shard_capability();
  }

  std::size_t shards() const { return shards_; }
  const fl::Aggregator& inner() const { return *inner_; }

 protected:
  tensor::FlatVec do_aggregate(const std::vector<fl::ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;

 private:
  std::unique_ptr<fl::Aggregator> inner_;
  std::size_t shards_;
  std::unique_ptr<ShardCombiner> combiner_;  // null when shards_ == 1
};

}  // namespace collapois::agg
