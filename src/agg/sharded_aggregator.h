// The sharded aggregation tree's root (DESIGN.md §12), with the
// infrastructure fault plane of §13.
//
// ShardedAggregator decorates any fl::Aggregator: it partitions each
// round's cohort across S shards — reusing the wrapped rule's own
// machinery per shard — and combines the shard results through a
// pluggable ShardCombiner chosen from the rule's declared capability:
//
//   streaming   -> StreamingCombiner: contiguous ROW ranges of the
//                  admission-ordered update list, absorbed sequentially
//                  into one accumulator stream. The fold's float
//                  operation sequence is literally the flat path's, so
//                  the result is bit-identical; memory stays bounded at
//                  one shard slice + one d-vector.
//   coordinate  -> ColumnConcatCombiner: contiguous COLUMN ranges
//                  computed concurrently on the thread pool into
//                  disjoint slices of the output vector. Per-column math
//                  never crosses a range boundary, so every coordinate
//                  equals the flat path's exactly — for any shard count
//                  and any thread count.
//   cohort_only -> no combiner exists: the constructor throws. Krum,
//                  Multi-Krum and FLARE need every pairwise distance in
//                  the cohort; partitioning them would silently change
//                  the rule, so the tree fails loudly instead.
//
// Under a ShardFaultModel (agg/shard_faults.h) each shard's work is
// attempted up to 1 + max_retries times; a shard that exhausts its
// budget FAILS OVER instead of failing the round:
//
//   streaming  — a dead shard's row range is carried forward and
//                absorbed by the NEXT surviving shard (the root itself
//                absorbs an orphaned tail). The fold still visits rows
//                0..n-1 exactly once, in order, into one stream — the
//                float operation sequence is unchanged, so a degraded
//                round is bit-identical to the flat result.
//   coordinate — fault decisions are drawn in a sequential pre-pass
//                (keeping the stats race-free); live shards compute
//                their own tiles and the dead shards' column ranges are
//                re-partitioned across the survivors (or, with no
//                survivors, computed by the root). Column math is
//                column-local, so ANY re-partition is bit-identical.
//
// Failed attempts never contribute bytes: a corrupt partial is detected
// by the root's digest check (modeled as perfect — see shard_faults.h)
// and discarded whole. Shard faults therefore change WHO computes, never
// WHAT is computed — which is why the trajectory is invariant under them
// and the fault config is deliberately NOT part of any checkpoint
// fingerprint.
//
// Shard fan-out uses the existing runtime::ThreadPool via parallel_for;
// per-shard inner calls get a null pool (the pool does not nest).
#pragma once

#include <memory>

#include "agg/shard_faults.h"
#include "agg/shard_plan.h"
#include "fl/aggregator.h"

namespace collapois::agg {

// Fault-injection context for one aggregation fan-out. `faults` null
// means the fault plane is off (every shard trivially survives); `stats`
// collects the round's infrastructure accounting.
struct ShardFaultContext {
  const ShardFaultModel* faults = nullptr;
  std::size_t round = 0;
  fl::InfraStats* stats = nullptr;
};

// Runs the retry loop for one shard: draws (shard, round, attempt)
// decisions until an attempt succeeds or the retry budget is exhausted,
// recording failures/retries/backoff into ctx.stats. Returns true when
// the shard survives (some attempt produced a usable partial), false
// when it failed over. NOT thread-safe against a shared ctx.stats — call
// it from a sequential decision pass.
bool shard_survives(const ShardFaultContext& ctx, std::size_t shard);

// Root-side combination strategy over the wrapped rule's shard protocol.
class ShardCombiner {
 public:
  virtual ~ShardCombiner() = default;

  // Runs the sharded aggregation of `updates` (non-empty) with at most
  // `shards` shards and returns the combined result. `ctx` injects the
  // round's shard faults (no-op when ctx.faults is null).
  virtual tensor::FlatVec combine(fl::Aggregator& inner,
                                  const std::vector<fl::ClientUpdate>& updates,
                                  std::span<const float> global,
                                  std::size_t shards,
                                  runtime::ThreadPool* pool,
                                  const ShardFaultContext& ctx) = 0;

  virtual const char* name() const = 0;
};

// Ordered sequential fold over row-range shards (streaming rules).
class StreamingCombiner final : public ShardCombiner {
 public:
  tensor::FlatVec combine(fl::Aggregator& inner,
                          const std::vector<fl::ClientUpdate>& updates,
                          std::span<const float> global, std::size_t shards,
                          runtime::ThreadPool* pool,
                          const ShardFaultContext& ctx) override;
  const char* name() const override { return "streaming"; }
};

// Concurrent column-range shards concatenated into the output
// (coordinate rules).
class ColumnConcatCombiner final : public ShardCombiner {
 public:
  tensor::FlatVec combine(fl::Aggregator& inner,
                          const std::vector<fl::ClientUpdate>& updates,
                          std::span<const float> global, std::size_t shards,
                          runtime::ThreadPool* pool,
                          const ShardFaultContext& ctx) override;
  const char* name() const override { return "column-concat"; }
};

// The combiner for a declared capability; throws std::invalid_argument
// for cohort_only (no semantics-preserving combiner exists).
std::unique_ptr<ShardCombiner> make_combiner(fl::ShardCapability capability);

class ShardedAggregator final : public fl::Aggregator {
 public:
  // Throws if inner is null, shards is 0, shards > 1 while the inner
  // rule is cohort_only (the loud-failure path, naming the rule and the
  // --shards remedy), or a fault model is supplied with shards <= 1
  // (there is no tree to fault).
  ShardedAggregator(std::unique_ptr<fl::Aggregator> inner, std::size_t shards,
                    std::shared_ptr<ShardFaultModel> faults = nullptr);

  // The tree is transparent to everything around it: name, post-update
  // hook and checkpoint bytes are the wrapped rule's, so trajectories
  // and resume blobs compare 1:1 against the flat path.
  std::string name() const override { return inner_->name(); }
  void post_update(tensor::FlatVec& params) override {
    inner_->post_update(params);
  }
  void save_state(fl::StateWriter& w) const override {
    inner_->save_state(w);
  }
  void load_state(fl::StateReader& r) override { inner_->load_state(r); }
  fl::ShardCapability shard_capability() const override {
    return inner_->shard_capability();
  }

  // The engine's round announcement keys the counter-based fault
  // decisions; the drained stats land in RoundTelemetry::infra.
  void begin_round(std::size_t round) override { round_ = round; }
  fl::InfraStats take_infra_stats() override {
    fl::InfraStats out = stats_;
    stats_ = {};
    return out;
  }

  std::size_t shards() const { return shards_; }
  const fl::Aggregator& inner() const { return *inner_; }
  const ShardFaultModel* faults() const { return faults_.get(); }

 protected:
  tensor::FlatVec do_aggregate(const std::vector<fl::ClientUpdate>& updates,
                               std::span<const float> global,
                               runtime::ThreadPool* pool) override;

 private:
  std::unique_ptr<fl::Aggregator> inner_;
  std::size_t shards_;
  std::unique_ptr<ShardCombiner> combiner_;  // null when shards_ == 1
  std::shared_ptr<ShardFaultModel> faults_;  // null when the plane is off
  std::size_t round_ = 0;
  fl::InfraStats stats_;
};

}  // namespace collapois::agg
