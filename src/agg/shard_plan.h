// Shard topology planning for the aggregation tree (DESIGN.md §12).
//
// A plan is a balanced partition of [0, n_items) into at most n_shards
// contiguous, non-empty ranges in ascending order. Contiguity is the
// bit-exactness lever: streaming rules fold row ranges in order (same
// float sequence as flat), and coordinate rules write disjoint column
// ranges (per-column math never crosses a boundary).
#pragma once

#include <cstddef>
#include <vector>

namespace collapois::agg {

struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;  // exclusive
  std::size_t size() const { return end - begin; }
};

// Partition [0, n_items) into min(n_shards, n_items) contiguous ranges
// whose sizes differ by at most one (the first n_items % S ranges get the
// extra element). Returns an empty plan for n_items == 0; throws on
// n_shards == 0. The plan is a pure function of (n_items, n_shards) —
// identical across thread counts, which keeps shard decomposition out of
// the determinism surface.
std::vector<ShardRange> plan_shards(std::size_t n_items, std::size_t n_shards);

}  // namespace collapois::agg
