#include "agg/shard_faults.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace collapois::agg {

namespace {

std::uint64_t splitmix64_once(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Counter-based uniform in [0, 1) for the (seed, shard, round, attempt)
// cell. Unlike the client plane there is a single lane: the kind is
// resolved from the same draw's position inside the stacked probability
// edges, and retries are separated by hashing the attempt index in.
double cell_uniform(std::uint64_t seed, std::size_t shard, std::size_t round,
                    std::size_t attempt) {
  std::uint64_t h = splitmix64_once(seed);
  h = splitmix64_once(h ^ static_cast<std::uint64_t>(shard));
  h = splitmix64_once(h ^ static_cast<std::uint64_t>(round));
  h = splitmix64_once(h ^ static_cast<std::uint64_t>(attempt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* shard_fault_kind_name(ShardFaultKind kind) {
  switch (kind) {
    case ShardFaultKind::none: return "none";
    case ShardFaultKind::crash: return "crash";
    case ShardFaultKind::timeout: return "timeout";
    case ShardFaultKind::corrupt: return "corrupt";
  }
  return "unknown";
}

bool ShardFaultConfig::any() const {
  return crash_prob > 0.0 || timeout_prob > 0.0 || corrupt_prob > 0.0 ||
         !pinned.empty();
}

ShardFaultModel::ShardFaultModel(ShardFaultConfig config)
    : config_(std::move(config)) {
  auto check_prob = [](double p, const char* name) {
    if (p < 0.0 || p > 1.0 || !std::isfinite(p)) {
      throw std::invalid_argument(std::string("ShardFaultModel: ") + name +
                                  " must be in [0, 1]");
    }
  };
  check_prob(config_.crash_prob, "crash_prob");
  check_prob(config_.timeout_prob, "timeout_prob");
  check_prob(config_.corrupt_prob, "corrupt_prob");
  if (config_.crash_prob + config_.timeout_prob + config_.corrupt_prob > 1.0) {
    throw std::invalid_argument(
        "ShardFaultModel: fault probabilities must sum to at most 1");
  }
  if (!std::isfinite(config_.backoff_base_ms) || config_.backoff_base_ms < 0.0 ||
      !std::isfinite(config_.backoff_cap_ms) || config_.backoff_cap_ms < 0.0) {
    throw std::invalid_argument(
        "ShardFaultModel: backoff parameters must be finite and >= 0");
  }
}

ShardFaultKind ShardFaultModel::decide(std::size_t shard, std::size_t round,
                                       std::size_t attempt) const {
  const auto pinned = config_.pinned.find(shard);
  if (pinned != config_.pinned.end()) return pinned->second;

  const double u = cell_uniform(config_.seed, shard, round, attempt);
  double edge = config_.crash_prob;
  if (u < edge) return ShardFaultKind::crash;
  edge += config_.timeout_prob;
  if (u < edge) return ShardFaultKind::timeout;
  edge += config_.corrupt_prob;
  if (u < edge) return ShardFaultKind::corrupt;
  return ShardFaultKind::none;
}

double ShardFaultModel::backoff_ms(std::size_t attempt) const {
  const double exp =
      config_.backoff_base_ms * std::pow(2.0, static_cast<double>(attempt - 1));
  return std::min(exp, config_.backoff_cap_ms);
}

}  // namespace collapois::agg
