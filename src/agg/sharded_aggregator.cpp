#include "agg/sharded_aggregator.h"

#include <stdexcept>
#include <vector>

#include "runtime/parallel.h"

namespace collapois::agg {

bool shard_survives(const ShardFaultContext& ctx, std::size_t shard) {
  if (ctx.faults == nullptr) return true;
  const std::size_t budget = ctx.faults->config().max_retries;
  for (std::size_t attempt = 0;; ++attempt) {
    if (ctx.faults->decide(shard, ctx.round, attempt) ==
        ShardFaultKind::none) {
      return true;
    }
    if (ctx.stats != nullptr) ++ctx.stats->shard_failures;
    if (attempt >= budget) break;  // retry budget exhausted — fail over
    if (ctx.stats != nullptr) {
      ++ctx.stats->shard_retries;
      ctx.stats->backoff_virtual_ms += ctx.faults->backoff_ms(attempt + 1);
    }
  }
  if (ctx.stats != nullptr) {
    ++ctx.stats->shard_failovers;
    ctx.stats->degraded = true;
  }
  return false;
}

tensor::FlatVec StreamingCombiner::combine(
    fl::Aggregator& inner, const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> global, std::size_t shards,
    runtime::ThreadPool* pool, const ShardFaultContext& ctx) {
  const auto plan = plan_shards(updates.size(), shards);
  auto stream = inner.stream_begin(updates.front().delta.size());
  // Shards fold IN ORDER into the single stream — that ordering is the
  // whole bit-exactness argument, so it is deliberately sequential; the
  // pool is passed through for the rule's own inner loops.
  //
  // Failover: a dead shard absorbs nothing; its row range stays in
  // `carry` and the next survivor absorbs the union [carry, its end).
  // The fold therefore still visits rows 0..n-1 exactly once, in order —
  // degraded rounds run the same float sequence as healthy ones.
  std::size_t carry = 0;
  for (std::size_t s = 0; s < plan.size(); ++s) {
    if (!shard_survives(ctx, s)) continue;
    inner.stream_absorb(*stream, updates, carry, plan[s].end, global, pool);
    carry = plan[s].end;
  }
  if (carry < updates.size()) {
    // Every shard from the last survivor onward died: the root itself
    // absorbs the orphaned tail.
    inner.stream_absorb(*stream, updates, carry, updates.size(), global, pool);
  }
  return inner.stream_finish(*stream, global);
}

tensor::FlatVec ColumnConcatCombiner::combine(
    fl::Aggregator& inner, const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> global, std::size_t shards,
    runtime::ThreadPool* pool, const ShardFaultContext& ctx) {
  const std::size_t dim = updates.front().delta.size();
  tensor::FlatVec out(dim);
  const auto plan = plan_shards(dim, shards);

  // Fault decisions are drawn in a sequential pre-pass so the shared
  // InfraStats needs no synchronization; the decisions themselves are
  // counter-based, so the split changes nothing.
  std::vector<ShardRange> work;
  std::vector<ShardRange> lost;
  work.reserve(plan.size());
  for (std::size_t s = 0; s < plan.size(); ++s) {
    (shard_survives(ctx, s) ? work : lost).push_back(plan[s]);
  }
  // Dead shards' column ranges are re-partitioned across the survivors
  // (with no survivors, the root recomputes them itself as one block).
  // Column math never crosses a range boundary, so any re-partition of
  // the lost columns is bit-identical to the flat result.
  for (const ShardRange& range : lost) {
    const std::size_t ways = work.empty() ? 1 : work.size();
    for (const ShardRange& sub : plan_shards(range.size(), ways)) {
      if (sub.size() == 0) continue;
      work.push_back({range.begin + sub.begin, range.begin + sub.end});
    }
  }

  // Disjoint output ranges -> data-race free; per-column math is column-
  // local -> any shard/thread count yields the flat result exactly. The
  // inner calls run on pool workers, so they get a null pool themselves
  // (runtime::ThreadPool does not nest).
  runtime::parallel_for(pool, work.size(), [&](std::size_t i) {
    inner.aggregate_columns(updates, global, work[i].begin, work[i].end,
                            out.data() + work[i].begin, nullptr);
  });
  return out;
}

std::unique_ptr<ShardCombiner> make_combiner(fl::ShardCapability capability) {
  switch (capability) {
    case fl::ShardCapability::streaming:
      return std::make_unique<StreamingCombiner>();
    case fl::ShardCapability::coordinate:
      return std::make_unique<ColumnConcatCombiner>();
    case fl::ShardCapability::cohort_only:
      break;
  }
  throw std::invalid_argument(
      "make_combiner: cohort_only rules cannot be combined across shards");
}

ShardedAggregator::ShardedAggregator(std::unique_ptr<fl::Aggregator> inner,
                                     std::size_t shards,
                                     std::shared_ptr<ShardFaultModel> faults)
    : inner_(std::move(inner)), shards_(shards), faults_(std::move(faults)) {
  if (!inner_) {
    throw std::invalid_argument("ShardedAggregator: null inner aggregator");
  }
  if (shards_ == 0) {
    throw std::invalid_argument("ShardedAggregator: shards must be >= 1");
  }
  if (shards_ > 1) {
    if (inner_->shard_capability() == fl::ShardCapability::cohort_only) {
      // The loud-failure path the capability matrix promises: pairwise-
      // distance rules need the whole cohort, and silently running them
      // per-shard would change their semantics.
      throw std::invalid_argument(
          "ShardedAggregator: defense '" + inner_->name() +
          "' needs the whole cohort (cohort_only) and cannot be sharded; "
          "run with --shards 1");
    }
    combiner_ = make_combiner(inner_->shard_capability());
  } else if (faults_ != nullptr) {
    throw std::invalid_argument(
        "ShardedAggregator: shard faults need a tree to fault — "
        "--shard-* flags require --shards > 1");
  }
}

tensor::FlatVec ShardedAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates, std::span<const float> global,
    runtime::ThreadPool* pool) {
  // S == 1 and the empty / single-update cases take the rule's own flat
  // path — same code, same errors, same bytes as an unwrapped aggregator.
  // A single-update round has no fan-out, so the fault plane is
  // bypassed too: there is no shard to crash.
  if (shards_ <= 1 || updates.size() <= 1) {
    return inner_->aggregate(updates, global, pool);
  }
  ShardFaultContext ctx{faults_.get(), round_, &stats_};
  return combiner_->combine(*inner_, updates, global, shards_, pool, ctx);
}

}  // namespace collapois::agg
