#include "agg/sharded_aggregator.h"

#include <stdexcept>

#include "runtime/parallel.h"

namespace collapois::agg {

tensor::FlatVec StreamingCombiner::combine(
    fl::Aggregator& inner, const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> global, std::size_t shards,
    runtime::ThreadPool* pool) {
  const auto plan = plan_shards(updates.size(), shards);
  auto stream = inner.stream_begin(updates.front().delta.size());
  // Shards fold IN ORDER into the single stream — that ordering is the
  // whole bit-exactness argument, so it is deliberately sequential; the
  // pool is passed through for the rule's own inner loops.
  for (const ShardRange& r : plan) {
    inner.stream_absorb(*stream, updates, r.begin, r.end, global, pool);
  }
  return inner.stream_finish(*stream, global);
}

tensor::FlatVec ColumnConcatCombiner::combine(
    fl::Aggregator& inner, const std::vector<fl::ClientUpdate>& updates,
    std::span<const float> global, std::size_t shards,
    runtime::ThreadPool* pool) {
  const std::size_t dim = updates.front().delta.size();
  tensor::FlatVec out(dim);
  const auto plan = plan_shards(dim, shards);
  // Disjoint output ranges -> data-race free; per-column math is column-
  // local -> any shard/thread count yields the flat result exactly. The
  // inner calls run on pool workers, so they get a null pool themselves
  // (runtime::ThreadPool does not nest).
  runtime::parallel_for(pool, plan.size(), [&](std::size_t s) {
    inner.aggregate_columns(updates, global, plan[s].begin, plan[s].end,
                            out.data() + plan[s].begin, nullptr);
  });
  return out;
}

std::unique_ptr<ShardCombiner> make_combiner(fl::ShardCapability capability) {
  switch (capability) {
    case fl::ShardCapability::streaming:
      return std::make_unique<StreamingCombiner>();
    case fl::ShardCapability::coordinate:
      return std::make_unique<ColumnConcatCombiner>();
    case fl::ShardCapability::cohort_only:
      break;
  }
  throw std::invalid_argument(
      "make_combiner: cohort_only rules cannot be combined across shards");
}

ShardedAggregator::ShardedAggregator(std::unique_ptr<fl::Aggregator> inner,
                                     std::size_t shards)
    : inner_(std::move(inner)), shards_(shards) {
  if (!inner_) {
    throw std::invalid_argument("ShardedAggregator: null inner aggregator");
  }
  if (shards_ == 0) {
    throw std::invalid_argument("ShardedAggregator: shards must be >= 1");
  }
  if (shards_ > 1) {
    if (inner_->shard_capability() == fl::ShardCapability::cohort_only) {
      // The loud-failure path the capability matrix promises: pairwise-
      // distance rules need the whole cohort, and silently running them
      // per-shard would change their semantics.
      throw std::invalid_argument(
          "ShardedAggregator: defense '" + inner_->name() +
          "' needs the whole cohort (cohort_only) and cannot be sharded; "
          "run with --shards 1");
    }
    combiner_ = make_combiner(inner_->shard_capability());
  }
}

tensor::FlatVec ShardedAggregator::do_aggregate(
    const std::vector<fl::ClientUpdate>& updates, std::span<const float> global,
    runtime::ThreadPool* pool) {
  // S == 1 and the empty / single-update cases take the rule's own flat
  // path — same code, same errors, same bytes as an unwrapped aggregator.
  if (shards_ <= 1 || updates.size() <= 1) {
    return inner_->aggregate(updates, global, pool);
  }
  return combiner_->combine(*inner_, updates, global, shards_, pool);
}

}  // namespace collapois::agg
