#include "agg/lazy_federation.h"

#include <stdexcept>

namespace collapois::agg {

std::uint64_t derive_client_seed(std::uint64_t base, std::size_t index) {
  // splitmix64 finalizer over base + (index+1) * golden-gamma. The +1
  // keeps client 0's seed distinct from the base seed itself.
  std::uint64_t z =
      base + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

LazyFederation::LazyFederation(std::size_t n_clients, std::size_t num_classes,
                               SplitFactory factory)
    : n_clients_(n_clients),
      num_classes_(num_classes),
      factory_(std::move(factory)) {
  if (n_clients_ == 0) {
    throw std::invalid_argument("LazyFederation: zero clients");
  }
  if (num_classes_ == 0) {
    throw std::invalid_argument("LazyFederation: zero classes");
  }
  if (!factory_) {
    throw std::invalid_argument("LazyFederation: null split factory");
  }
}

const data::ClientSplit& LazyFederation::client_data(std::size_t i) {
  if (i >= n_clients_) {
    throw std::out_of_range("LazyFederation::client_data: index out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(i);
  if (it == cache_.end()) {
    it = cache_.emplace(i, factory_(i)).first;
  }
  return it->second;
}

std::vector<double> LazyFederation::client_histogram(std::size_t i) {
  const data::ClientSplit& c = client_data(i);
  std::vector<double> hist(num_classes_, 0.0);
  for (const data::Dataset* part : {&c.train, &c.test, &c.validation}) {
    const auto h = part->label_histogram();
    for (std::size_t j = 0; j < num_classes_; ++j) hist[j] += h[j];
  }
  return hist;
}

std::size_t LazyFederation::materialized() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace collapois::agg
