// Lazy client population — the client half of the cross-device memory
// fix (DESIGN.md §12).
//
// Clients are built by a factory on first sample instead of at startup,
// so live memory tracks the number of DISTINCT participants ever sampled
// (10²–10³ per round at production sampling ratios) rather than the
// registered population (10⁵–10⁶). The factory must be a pure function
// of the client index — the simulator derives every per-client RNG from
// the index (agg/lazy_federation.h), so a client materialized at round
// 50 is byte-identical to the same client materialized at round 0.
//
// Checkpoints store only the materialized subset: the count, then
// (index, state) pairs in ascending index order. Resume re-materializes
// exactly those clients through the factory and restores their evolved
// state, so a resumed lazy run replays the original bit-for-bit.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "fl/population.h"

namespace collapois::agg {

class LazyClientPopulation final : public fl::ClientPopulation {
 public:
  using Factory = std::function<std::unique_ptr<fl::Client>(std::size_t)>;

  // Throws on zero clients or a null factory.
  LazyClientPopulation(std::size_t n_clients, Factory factory);

  std::size_t size() const override { return n_clients_; }

  // Materializes on first access (under the lock, so the distinct-index
  // concurrency contract holds for the eval sweep). Throws on an
  // out-of-range index or a factory that returns null.
  fl::Client& client(std::size_t i) override;

  std::size_t materialized() const override;

  void save_state(fl::StateWriter& w) const override;
  void load_state(fl::StateReader& r) override;

 private:
  fl::Client& materialize_locked(std::size_t i);

  std::size_t n_clients_;
  Factory factory_;
  mutable std::mutex mu_;
  std::map<std::size_t, std::unique_ptr<fl::Client>> clients_;
};

}  // namespace collapois::agg
