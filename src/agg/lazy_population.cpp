#include "agg/lazy_population.h"

#include <stdexcept>

namespace collapois::agg {

LazyClientPopulation::LazyClientPopulation(std::size_t n_clients,
                                           Factory factory)
    : n_clients_(n_clients), factory_(std::move(factory)) {
  if (n_clients_ == 0) {
    throw std::invalid_argument("LazyClientPopulation: zero clients");
  }
  if (!factory_) {
    throw std::invalid_argument("LazyClientPopulation: null factory");
  }
}

fl::Client& LazyClientPopulation::materialize_locked(std::size_t i) {
  auto it = clients_.find(i);
  if (it == clients_.end()) {
    auto c = factory_(i);
    if (!c) {
      throw std::runtime_error(
          "LazyClientPopulation: factory returned null client");
    }
    it = clients_.emplace(i, std::move(c)).first;
  }
  return *it->second;
}

fl::Client& LazyClientPopulation::client(std::size_t i) {
  if (i >= n_clients_) {
    throw std::out_of_range("LazyClientPopulation: index out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  return materialize_locked(i);
}

std::size_t LazyClientPopulation::materialized() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clients_.size();
}

void LazyClientPopulation::save_state(fl::StateWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Only the materialized subset carries evolved state; std::map keeps
  // the (index, state) pairs in ascending index order, which makes the
  // blob a pure function of which clients ever participated.
  w.write_size(clients_.size());
  for (const auto& [index, client] : clients_) {
    w.write_size(index);
    client->save_state(w);
  }
}

void LazyClientPopulation::load_state(fl::StateReader& r) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = r.read_size();
  if (n > n_clients_) {
    throw std::runtime_error(
        "LazyClientPopulation::load_state: materialized count exceeds "
        "population");
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t index = r.read_size();
    if (index >= n_clients_) {
      throw std::runtime_error(
          "LazyClientPopulation::load_state: client index out of range");
    }
    materialize_locked(index).load_state(r);
  }
}

}  // namespace collapois::agg
