// A compromised client that *trains* on a dataset it owns (typically a
// poisoned one). This is the shared machinery of the DPois and DBA
// baselines: unlike CollaPois, these attacks derive their malicious
// gradients from local SGD on trojaned data, so their updates inherit the
// scatter of the local data distribution (Fig. 3b).
#pragma once

#include "data/dataset.h"
#include "fl/client.h"

namespace collapois::attacks {

class PoisonTrainingClient : public fl::Client {
 public:
  PoisonTrainingClient(std::size_t id, data::Dataset training_data,
                       nn::Model model, nn::SgdConfig sgd,
                       double distill_weight, stats::Rng rng);

  std::size_t id() const override { return id_; }
  bool is_compromised() const override { return true; }
  fl::ClientUpdate compute_update(const fl::RoundContext& ctx) override;
  void distill_round(nn::Model& personal, nn::Model& teacher) override;
  void save_state(fl::StateWriter& w) const override { w.write_rng(rng_); }
  void load_state(fl::StateReader& r) override { r.read_rng(rng_); }

 private:
  std::size_t id_;
  data::Dataset data_;
  nn::Model model_;
  nn::SgdConfig sgd_;
  double distill_weight_;
  stats::Rng rng_;
};

}  // namespace collapois::attacks
