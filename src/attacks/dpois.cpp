#include "attacks/dpois.h"

#include "trojan/poison.h"

namespace collapois::attacks {

std::unique_ptr<fl::Client> make_dpois_client(
    std::size_t id, const data::Dataset& clean_train,
    const trojan::Trigger& trigger, const DPoisConfig& config, nn::Model model,
    nn::SgdConfig sgd, double distill_weight, stats::Rng rng) {
  data::Dataset poisoned = trojan::mix_poison(
      clean_train, trigger, config.target_label, config.poison_fraction, rng);
  return std::make_unique<PoisonTrainingClient>(
      id, std::move(poisoned), std::move(model), sgd, distill_weight,
      std::move(rng));
}

}  // namespace collapois::attacks
