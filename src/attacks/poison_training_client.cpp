#include "attacks/poison_training_client.h"

#include <stdexcept>

namespace collapois::attacks {

PoisonTrainingClient::PoisonTrainingClient(std::size_t id,
                                           data::Dataset training_data,
                                           nn::Model model, nn::SgdConfig sgd,
                                           double distill_weight,
                                           stats::Rng rng)
    : id_(id),
      data_(std::move(training_data)),
      model_(std::move(model)),
      sgd_(sgd),
      distill_weight_(distill_weight),
      rng_(std::move(rng)) {
  if (data_.empty()) {
    throw std::invalid_argument("PoisonTrainingClient: empty training data");
  }
}

fl::ClientUpdate PoisonTrainingClient::compute_update(
    const fl::RoundContext& ctx) {
  model_.set_parameters(ctx.global);
  nn::train_sgd(model_, data_, sgd_, rng_);
  fl::ClientUpdate u;
  u.client_id = id_;
  u.delta = tensor::sub(ctx.global, model_.get_parameters());
  u.weight = 1.0;
  return u;
}

void PoisonTrainingClient::distill_round(nn::Model& personal,
                                         nn::Model& teacher) {
  // Same cyclic transfer as a benign client (warm-start from the teacher,
  // distill toward the previous personal model) but trained on the
  // poisoned local dataset.
  nn::Model previous = personal;
  personal.set_parameters(teacher.get_parameters());
  nn::train_sgd_distill(personal, previous, distill_weight_, data_, sgd_,
                        rng_);
}

}  // namespace collapois::attacks
