// DPois baseline [13], [14]: classical data poisoning. Each compromised
// client trains on its own local data augmented with a trojaned copy
// (D_c union D_c^Troj) and submits the resulting gradient like any other
// participant.
#pragma once

#include <memory>

#include "attacks/poison_training_client.h"
#include "trojan/trigger.h"

namespace collapois::attacks {

struct DPoisConfig {
  int target_label = 0;
  // Fraction of the local data that is duplicated in trojaned form.
  double poison_fraction = 0.5;
};

// Build a DPois compromised client from its clean local training data.
std::unique_ptr<fl::Client> make_dpois_client(
    std::size_t id, const data::Dataset& clean_train,
    const trojan::Trigger& trigger, const DPoisConfig& config, nn::Model model,
    nn::SgdConfig sgd, double distill_weight, stats::Rng rng);

}  // namespace collapois::attacks
