// DBA baseline [8]: distributed backdoor attack. The global trigger is
// split into sub-patterns; compromised client k trains with only its
// assigned part, while Attack SR is evaluated with the assembled global
// trigger.
#pragma once

#include <memory>
#include <vector>

#include "attacks/poison_training_client.h"
#include "trojan/patch_trigger.h"

namespace collapois::attacks {

struct DbaConfig {
  int target_label = 0;
  double poison_fraction = 0.5;
};

// Build a DBA compromised client; `part_index` selects which sub-trigger
// of `parts` this client embeds (round-robin assignment by the caller).
std::unique_ptr<fl::Client> make_dba_client(
    std::size_t id, const data::Dataset& clean_train,
    const std::vector<trojan::PatchTrigger>& parts, std::size_t part_index,
    const DbaConfig& config, nn::Model model, nn::SgdConfig sgd,
    double distill_weight, stats::Rng rng);

}  // namespace collapois::attacks
