#include "attacks/mrepl.h"

#include <stdexcept>

namespace collapois::attacks {

MReplClient::MReplClient(std::size_t id, tensor::FlatVec trojaned_model,
                         MReplConfig config,
                         std::unique_ptr<fl::Client> dormant_behavior)
    : id_(id),
      x_(std::move(trojaned_model)),
      config_(config),
      dormant_(std::move(dormant_behavior)) {
  if (x_.empty() && !dormant_) {
    throw std::invalid_argument(
        "MReplClient: need a Trojaned model or a dormant behaviour");
  }
  if (config_.boost <= 0.0) {
    throw std::invalid_argument("MReplClient: boost must be > 0");
  }
}

void MReplClient::set_trojaned_model(tensor::FlatVec x) {
  if (x.empty()) throw std::invalid_argument("set_trojaned_model: empty");
  x_ = std::move(x);
}

fl::ClientUpdate MReplClient::compute_update(const fl::RoundContext& ctx) {
  if (!armed()) {
    fl::ClientUpdate u = dormant_->compute_update(ctx);
    u.client_id = id_;
    return u;
  }
  if (ctx.global.size() != x_.size()) {
    throw std::invalid_argument("MReplClient: dimension mismatch");
  }
  fl::ClientUpdate u;
  u.client_id = id_;
  u.delta = tensor::sub(ctx.global, x_);
  tensor::scale_inplace(u.delta, config_.boost);
  if (config_.clip > 0.0) tensor::clip_l2_inplace(u.delta, config_.clip);
  u.weight = 1.0;
  return u;
}

void MReplClient::distill_round(nn::Model& personal, nn::Model& teacher) {
  if (!armed()) {
    dormant_->distill_round(personal, teacher);
    return;
  }
  // Under cyclic distillation the strongest replacement available is to
  // serve the Trojaned model itself as this client's "personal" model.
  personal.set_parameters(x_);
}

}  // namespace collapois::attacks
