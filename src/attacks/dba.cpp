#include "attacks/dba.h"

#include <stdexcept>

#include "trojan/poison.h"

namespace collapois::attacks {

std::unique_ptr<fl::Client> make_dba_client(
    std::size_t id, const data::Dataset& clean_train,
    const std::vector<trojan::PatchTrigger>& parts, std::size_t part_index,
    const DbaConfig& config, nn::Model model, nn::SgdConfig sgd,
    double distill_weight, stats::Rng rng) {
  if (parts.empty()) throw std::invalid_argument("make_dba_client: no parts");
  const auto& part = parts[part_index % parts.size()];
  data::Dataset poisoned = trojan::mix_poison(
      clean_train, part, config.target_label, config.poison_fraction, rng);
  return std::make_unique<PoisonTrainingClient>(
      id, std::move(poisoned), std::move(model), sgd, distill_weight,
      std::move(rng));
}

}  // namespace collapois::attacks
