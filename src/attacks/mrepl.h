// MRepl baseline [9]: model replacement. The attacker pre-trains a
// Trojaned model and, when sampled, submits a boosted update designed to
// replace the aggregate with that model — the "one-shot" backdoor. The
// boost factor approximates |S_t| / lambda so that after averaging the
// global model lands on (or near) the Trojaned model; the resulting jump
// in model behaviour is exactly the abrupt shift the paper notes makes
// MRepl detectable (Fig. 13).
#pragma once

#include "fl/client.h"

namespace collapois::attacks {

struct MReplConfig {
  // Multiplier applied to (theta^t - X); classic MRepl uses the expected
  // number of sampled clients divided by the server learning rate.
  double boost = 10.0;
  // Optional L2 clip of the transmitted update (0 disables). A clipped
  // MRepl is the "constrain-and-scale" variant.
  double clip = 0.0;
};

class MReplClient : public fl::Client {
 public:
  // Pass an empty `trojaned_model` plus a `dormant_behavior` to create a
  // dormant client that acts benignly until set_trojaned_model() arms it
  // (the attacker waits for warmup rounds before striking).
  MReplClient(std::size_t id, tensor::FlatVec trojaned_model,
              MReplConfig config,
              std::unique_ptr<fl::Client> dormant_behavior = nullptr);

  std::size_t id() const override { return id_; }
  bool is_compromised() const override { return true; }
  fl::ClientUpdate compute_update(const fl::RoundContext& ctx) override;
  void distill_round(nn::Model& personal, nn::Model& teacher) override;
  // X is checkpointed at the experiment level; the dormant behaviour is
  // the only per-client mutable state.
  void save_state(fl::StateWriter& w) const override {
    if (dormant_) dormant_->save_state(w);
  }
  void load_state(fl::StateReader& r) override {
    if (dormant_) dormant_->load_state(r);
  }

  void set_trojaned_model(tensor::FlatVec x);
  bool armed() const { return !x_.empty(); }

  const tensor::FlatVec& trojaned_model() const { return x_; }

 private:
  std::size_t id_;
  tensor::FlatVec x_;
  MReplConfig config_;
  std::unique_ptr<fl::Client> dormant_;
};

}  // namespace collapois::attacks
