// Risk clustering of benign clients (Section V, "Client-level
// Evaluation"): the disjoint 1% / 25% / 50% / bottom-50% clusters by
// score (Eq. 8), and the CS_k proximity between each cluster's cumulative
// label distribution and the auxiliary data's (Eq. 9) that explains the
// risk ordering (Figs. 11 and 12).
#pragma once

#include <string>
#include <vector>

#include "metrics/client_metrics.h"

namespace collapois::metrics {

struct ClusterResult {
  std::string name;                        // "top-1%", ..., "bottom-50%"
  std::vector<std::size_t> client_indices; // indices into the federation
  double mean_benign_ac = 0.0;
  double mean_attack_sr = 0.0;
  // CS_k (Eq. 9): mean cosine similarity between each member's cumulative
  // label distribution and the auxiliary data's.
  double label_cosine = 0.0;
};

// Cosine similarity of cumulative label distributions (Eq. 9's inner
// term) from raw label histograms.
double cumulative_label_cosine(std::span<const double> histogram_a,
                               std::span<const double> histogram_b);

// Build the disjoint clusters: each top-k% cluster excludes all preceding
// clusters; the final cluster holds the remaining (bottom) clients.
// `ks` must be increasing percentages, e.g. {1, 25, 50}.
// `client_histograms` indexes by federation client index;
// `auxiliary_histogram` is the label histogram of D_a.
std::vector<ClusterResult> risk_clusters(
    const std::vector<ClientEval>& evals, const std::vector<double>& ks,
    const std::vector<std::vector<double>>& client_histograms,
    std::span<const double> auxiliary_histogram);

}  // namespace collapois::metrics
