#include "metrics/telemetry.h"

#include <stdexcept>

#include "stats/geometry.h"

namespace collapois::metrics {

SplitUpdates split_updates(const fl::RoundTelemetry& telemetry) {
  // Protocols without transmitted updates (MetaFed) report sampled ids and
  // compromised flags but no update vectors; there is nothing to split.
  if (telemetry.updates.empty()) return {};
  if (telemetry.updates.size() != telemetry.compromised.size()) {
    throw std::invalid_argument("split_updates: flag size mismatch");
  }
  SplitUpdates s;
  for (std::size_t i = 0; i < telemetry.updates.size(); ++i) {
    if (telemetry.compromised[i]) {
      s.malicious.push_back(telemetry.updates[i].delta);
    } else {
      s.benign.push_back(telemetry.updates[i].delta);
    }
  }
  return s;
}

RoundAngleSummary summarize_round_angles(const fl::RoundTelemetry& telemetry) {
  const SplitUpdates s = split_updates(telemetry);
  RoundAngleSummary out;
  out.n_benign = s.benign.size();
  out.n_malicious = s.malicious.size();
  if (s.benign.size() >= 2) {
    const auto angles = stats::pairwise_angles(s.benign);
    out.benign_pairwise_mean = stats::mean(angles);
    out.benign_pairwise_std = stats::stddev(angles);
  }
  if (s.malicious.size() >= 2) {
    const auto angles = stats::pairwise_angles(s.malicious);
    out.malicious_pairwise_mean = stats::mean(angles);
    out.malicious_pairwise_std = stats::stddev(angles);
  }
  return out;
}

void AngleAccumulator::add(const fl::RoundTelemetry& telemetry) {
  const SplitUpdates s = split_updates(telemetry);
  if (s.benign.size() >= 2) {
    for (double a : stats::pairwise_angles(s.benign)) benign_.add(a);
  }
  if (s.malicious.size() >= 2) {
    for (double a : stats::pairwise_angles(s.malicious)) malicious_.add(a);
  }
}

}  // namespace collapois::metrics
