#include "metrics/clusters.h"

#include <algorithm>
#include <stdexcept>

#include "stats/geometry.h"

namespace collapois::metrics {

double cumulative_label_cosine(std::span<const double> histogram_a,
                               std::span<const double> histogram_b) {
  if (histogram_a.size() != histogram_b.size() || histogram_a.empty()) {
    throw std::invalid_argument("cumulative_label_cosine: size mismatch");
  }
  std::vector<double> ca(histogram_a.begin(), histogram_a.end());
  std::vector<double> cb(histogram_b.begin(), histogram_b.end());
  for (std::size_t j = 1; j < ca.size(); ++j) {
    ca[j] += ca[j - 1];
    cb[j] += cb[j - 1];
  }
  return stats::cosine_similarity(std::span<const double>(ca),
                                  std::span<const double>(cb));
}

std::vector<ClusterResult> risk_clusters(
    const std::vector<ClientEval>& evals, const std::vector<double>& ks,
    const std::vector<std::vector<double>>& client_histograms,
    std::span<const double> auxiliary_histogram) {
  for (std::size_t i = 1; i < ks.size(); ++i) {
    if (ks[i] <= ks[i - 1]) {
      throw std::invalid_argument("risk_clusters: ks must be increasing");
    }
  }
  // Rank benign clients with test data by descending score.
  std::vector<const ClientEval*> ranked;
  for (const auto& e : evals) {
    if (!e.compromised && e.has_test_data) ranked.push_back(&e);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ClientEval* a, const ClientEval* b) {
              return a->score() > b->score();
            });

  std::vector<ClusterResult> out;
  std::size_t consumed = 0;
  auto emit = [&](const std::string& name, std::size_t end) {
    ClusterResult c;
    c.name = name;
    for (std::size_t r = consumed; r < end && r < ranked.size(); ++r) {
      const ClientEval* e = ranked[r];
      c.client_indices.push_back(e->client_index);
      c.mean_benign_ac += e->benign_ac;
      c.mean_attack_sr += e->attack_sr;
      if (e->client_index < client_histograms.size()) {
        c.label_cosine += cumulative_label_cosine(
            client_histograms[e->client_index], auxiliary_histogram);
      }
    }
    const double n = static_cast<double>(c.client_indices.size());
    if (n > 0) {
      c.mean_benign_ac /= n;
      c.mean_attack_sr /= n;
      c.label_cosine /= n;
    }
    consumed = std::min(end, ranked.size());
    out.push_back(std::move(c));
  };

  for (double k : ks) {
    std::size_t end = static_cast<std::size_t>(
        k / 100.0 * static_cast<double>(ranked.size()));
    end = std::max(end, consumed + 1);  // every cluster gets >= 1 client
    emit("top-" + std::to_string(static_cast<int>(k)) + "%", end);
  }
  emit("bottom", ranked.size());
  return out;
}

}  // namespace collapois::metrics
