// Round-level gradient telemetry: the angle summaries behind Figs. 3 and
// 6 and the global-model-to-X distance tracked in Fig. 7 / Theorem 2.
#pragma once

#include <vector>

#include "fl/server.h"
#include "stats/summary.h"

namespace collapois::metrics {

struct RoundAngleSummary {
  // Mean/std of pairwise angles among benign updates of the round.
  double benign_pairwise_mean = 0.0;
  double benign_pairwise_std = 0.0;
  // Same among compromised updates.
  double malicious_pairwise_mean = 0.0;
  double malicious_pairwise_std = 0.0;
  std::size_t n_benign = 0;
  std::size_t n_malicious = 0;
};

RoundAngleSummary summarize_round_angles(const fl::RoundTelemetry& telemetry);

// Accumulates angle summaries across rounds (e.g. the first ten rounds the
// attacker uses to estimate mu_alpha and sigma).
class AngleAccumulator {
 public:
  void add(const fl::RoundTelemetry& telemetry);

  stats::RunningStats benign() const { return benign_; }
  stats::RunningStats malicious() const { return malicious_; }

 private:
  stats::RunningStats benign_;
  stats::RunningStats malicious_;
};

// Split a round's updates into (benign, malicious) pseudo-gradient sets.
struct SplitUpdates {
  std::vector<tensor::FlatVec> benign;
  std::vector<tensor::FlatVec> malicious;
};

SplitUpdates split_updates(const fl::RoundTelemetry& telemetry);

}  // namespace collapois::metrics
