#include "metrics/client_metrics.h"

#include <algorithm>
#include <stdexcept>

#include "nn/eval.h"
#include "runtime/parallel.h"
#include "trojan/poison.h"

namespace collapois::metrics {

std::vector<ClientEval> evaluate_clients(fl::FlAlgorithm& algo,
                                         const data::FederatedData& fed,
                                         const trojan::Trigger& eval_trigger,
                                         const nn::Model& architecture,
                                         const std::vector<bool>& compromised,
                                         const EvalConfig& config) {
  return evaluate_clients(
      algo, fed.num_clients(),
      [&fed](std::size_t i) -> const data::ClientSplit& {
        return fed.clients[i];
      },
      eval_trigger, architecture, compromised, config);
}

std::vector<ClientEval> evaluate_clients(
    fl::FlAlgorithm& algo, std::size_t n_clients,
    const std::function<const data::ClientSplit&(std::size_t)>& split_of,
    const trojan::Trigger& eval_trigger, const nn::Model& architecture,
    const std::vector<bool>& compromised, const EvalConfig& config) {
  const std::size_t n = n_clients;
  if (algo.num_clients() != n || compromised.size() != n) {
    throw std::invalid_argument("evaluate_clients: population size mismatch");
  }
  // Pick the evaluation subset: uniform stride over the population.
  std::vector<std::size_t> targets;
  if (config.max_clients == 0 || config.max_clients >= n) {
    targets.resize(n);
    for (std::size_t i = 0; i < n; ++i) targets[i] = i;
  } else {
    const double stride =
        static_cast<double>(n) / static_cast<double>(config.max_clients);
    for (std::size_t k = 0; k < config.max_clients; ++k) {
      targets.push_back(static_cast<std::size_t>(stride * static_cast<double>(k)));
    }
  }

  // The sweep dominates post-training time on large populations, so it
  // runs on the pool: one task per client, each with its own inference
  // model copy, results written by index (order-independent, so the
  // output matches the sequential sweep exactly).
  std::vector<ClientEval> out(targets.size());
  runtime::parallel_for(config.pool, targets.size(), [&](std::size_t k) {
    const std::size_t i = targets[k];
    ClientEval e;
    e.client_index = i;
    e.compromised = compromised[i];
    const data::Dataset& test = split_of(i).test;
    if (!test.empty()) {
      e.has_test_data = true;
      nn::Model model = architecture;
      model.set_parameters(algo.client_eval_params(i));
      e.benign_ac = nn::accuracy(model, test);
      const data::Dataset trojaned =
          trojan::apply_trigger_all(test, eval_trigger, config.target_label);
      e.attack_sr = nn::accuracy(model, trojaned);
    }
    out[k] = e;
  });
  return out;
}

namespace {

std::vector<const ClientEval*> benign_with_data(
    const std::vector<ClientEval>& evals) {
  std::vector<const ClientEval*> out;
  for (const auto& e : evals) {
    if (!e.compromised && e.has_test_data) out.push_back(&e);
  }
  return out;
}

PopulationMetrics average_of(const std::vector<const ClientEval*>& group) {
  PopulationMetrics m;
  m.clients = group.size();
  if (group.empty()) return m;
  for (const ClientEval* e : group) {
    m.benign_ac += e->benign_ac;
    m.attack_sr += e->attack_sr;
  }
  m.benign_ac /= static_cast<double>(group.size());
  m.attack_sr /= static_cast<double>(group.size());
  return m;
}

}  // namespace

PopulationMetrics average_benign(const std::vector<ClientEval>& evals) {
  return average_of(benign_with_data(evals));
}

PopulationMetrics average_top_k(const std::vector<ClientEval>& evals,
                                double k_percent) {
  if (k_percent <= 0.0 || k_percent > 100.0) {
    throw std::invalid_argument("average_top_k: k must be in (0, 100]");
  }
  auto group = benign_with_data(evals);
  std::sort(group.begin(), group.end(),
            [](const ClientEval* a, const ClientEval* b) {
              return a->score() > b->score();
            });
  std::size_t take = static_cast<std::size_t>(
      k_percent / 100.0 * static_cast<double>(group.size()));
  take = std::max<std::size_t>(take, 1);
  take = std::min(take, group.size());
  group.resize(take);
  return average_of(group);
}

double fraction_infected(const std::vector<ClientEval>& evals,
                         double threshold) {
  const auto group = benign_with_data(evals);
  if (group.empty()) return 0.0;
  std::size_t infected = 0;
  for (const ClientEval* e : group) {
    if (e->attack_sr > threshold) ++infected;
  }
  return static_cast<double>(infected) / static_cast<double>(group.size());
}

}  // namespace collapois::metrics
