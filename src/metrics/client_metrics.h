// Client-level evaluation — the paper's central methodological point.
//
// For every benign client i, using the model that client actually serves
// (personalized theta_i under PFL, the global model otherwise):
//   Benign AC_i = accuracy on the clean local test set;
//   Attack SR_i = fraction of trigger-stamped test samples classified as
//                 the attacker's target class;
//   score_i     = Benign AC_i + Attack SR_i              (Eq. 8)
// Population metrics are the averages over benign clients.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "data/partition.h"
#include "fl/algorithm.h"
#include "nn/model.h"
#include "runtime/thread_pool.h"
#include "trojan/trigger.h"

namespace collapois::metrics {

struct ClientEval {
  std::size_t client_index = 0;
  bool compromised = false;
  bool has_test_data = false;
  double benign_ac = 0.0;
  double attack_sr = 0.0;
  double score() const { return benign_ac + attack_sr; }
};

struct EvalConfig {
  int target_label = 0;
  // Evaluate only this many clients (uniformly strided over the
  // population) to bound cost in per-round tracking; 0 = all clients.
  std::size_t max_clients = 0;
  // Worker pool for the per-client sweep (not owned; nullptr evaluates
  // sequentially). Each client's evaluation is independent — its own
  // serving model, its own test split, its own personalization RNG — and
  // results are collected by client index, so the output is identical
  // for any pool size.
  runtime::ThreadPool* pool = nullptr;
};

// Evaluate clients of `algo` against `fed`. `eval_trigger` is the trigger
// applied at inference time (for DBA: the assembled global trigger).
// `architecture` supplies the model structure for running inference;
// `compromised` flags which client indices are attacker-controlled.
std::vector<ClientEval> evaluate_clients(fl::FlAlgorithm& algo,
                                         const data::FederatedData& fed,
                                         const trojan::Trigger& eval_trigger,
                                         const nn::Model& architecture,
                                         const std::vector<bool>& compromised,
                                         const EvalConfig& config);

// Same sweep against an arbitrary split provider — the lazy-population
// path, where indexing a materialized FederatedData would defeat
// on-demand generation. `split_of(i)` must be safe to call concurrently
// for distinct indices and return a reference that outlives the sweep.
std::vector<ClientEval> evaluate_clients(
    fl::FlAlgorithm& algo, std::size_t n_clients,
    const std::function<const data::ClientSplit&(std::size_t)>& split_of,
    const trojan::Trigger& eval_trigger, const nn::Model& architecture,
    const std::vector<bool>& compromised, const EvalConfig& config);

struct PopulationMetrics {
  double benign_ac = 0.0;
  double attack_sr = 0.0;
  std::size_t clients = 0;
};

// Average over benign clients with test data.
PopulationMetrics average_benign(const std::vector<ClientEval>& evals);

// Average over the top-k% benign clients by score (Eq. 8), k in (0, 100].
PopulationMetrics average_top_k(const std::vector<ClientEval>& evals,
                                double k_percent);

// Fraction of benign clients whose Attack SR exceeds `threshold` — the
// "how many clients are impacted" headline numbers (e.g. SR > 70%).
double fraction_infected(const std::vector<ClientEval>& evals,
                         double threshold);

}  // namespace collapois::metrics
