#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace collapois::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const std::size_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
  n_ = total;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min_value(xs);
  s.p25 = quantile(xs, 0.25);
  s.median = median(xs);
  s.p75 = quantile(xs, 0.75);
  s.max = max_value(xs);
  return s;
}

}  // namespace collapois::stats
