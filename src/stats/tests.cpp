#include "stats/tests.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/special.h"
#include "stats/summary.h"

namespace collapois::stats {

TestResult welch_t_test(std::span<const double> a, std::span<const double> b) {
  if (a.size() < 2 || b.size() < 2) {
    throw std::invalid_argument("welch_t_test: need >= 2 samples per group");
  }
  const double ma = mean(a);
  const double mb = mean(b);
  const double va = variance(a);
  const double vb = variance(b);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double se2 = va / na + vb / nb;
  TestResult r;
  if (se2 <= 0.0) {
    // Both groups constant: identical means -> p = 1, else p = 0.
    r.statistic = 0.0;
    r.p_value = (ma == mb) ? 1.0 : 0.0;
    return r;
  }
  r.statistic = (ma - mb) / std::sqrt(se2);
  // Welch-Satterthwaite degrees of freedom.
  const double df = se2 * se2 /
                    ((va / na) * (va / na) / (na - 1.0) +
                     (vb / nb) * (vb / nb) / (nb - 1.0));
  r.p_value = student_t_sf_two_sided(r.statistic, df);
  return r;
}

TestResult levene_test(std::span<const double> a, std::span<const double> b) {
  if (a.size() < 2 || b.size() < 2) {
    throw std::invalid_argument("levene_test: need >= 2 samples per group");
  }
  // Brown-Forsythe: absolute deviations from the group medians.
  const double med_a = median(a);
  const double med_b = median(b);
  std::vector<double> za(a.size());
  std::vector<double> zb(b.size());
  for (std::size_t i = 0; i < a.size(); ++i) za[i] = std::fabs(a[i] - med_a);
  for (std::size_t i = 0; i < b.size(); ++i) zb[i] = std::fabs(b[i] - med_b);

  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double n = na + nb;
  const double mza = mean(za);
  const double mzb = mean(zb);
  const double mz = (na * mza + nb * mzb) / n;

  const double between = na * (mza - mz) * (mza - mz) +
                         nb * (mzb - mz) * (mzb - mz);
  double within = 0.0;
  for (double z : za) within += (z - mza) * (z - mza);
  for (double z : zb) within += (z - mzb) * (z - mzb);

  TestResult r;
  if (within <= 0.0) {
    r.statistic = 0.0;
    r.p_value = (between <= 0.0) ? 1.0 : 0.0;
    return r;
  }
  const double k = 2.0;  // two groups
  r.statistic = ((n - k) / (k - 1.0)) * (between / within);
  r.p_value = f_sf(r.statistic, k - 1.0, n - k);
  return r;
}

TestResult ks_test(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_test: empty sample");
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  double d = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::fabs(fa - fb));
  }
  TestResult r;
  r.statistic = d;
  const double ne = na * nb / (na + nb);
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  r.p_value = kolmogorov_sf(lambda);
  return r;
}

double three_sigma_outlier_rate(std::span<const double> background,
                                std::span<const double> points) {
  if (background.size() < 2 || points.empty()) return 0.0;
  const double m = mean(background);
  const double sd = stddev(background);
  if (sd <= 0.0) {
    std::size_t out = 0;
    for (double p : points) out += (p != m) ? 1 : 0;
    return static_cast<double>(out) / static_cast<double>(points.size());
  }
  std::size_t out = 0;
  for (double p : points) {
    if (std::fabs(p - m) > 3.0 * sd) ++out;
  }
  return static_cast<double>(out) / static_cast<double>(points.size());
}

double hoeffding_tail(std::size_t n, double eps, double lo, double hi) {
  if (n == 0 || hi <= lo) return 1.0;
  const double range = hi - lo;
  const double t = 2.0 * static_cast<double>(n) * eps * eps / (range * range);
  return std::min(1.0, 2.0 * std::exp(-t));
}

double hoeffding_eps(std::size_t n, double delta, double lo, double hi) {
  if (n == 0 || hi <= lo || delta <= 0.0 || delta >= 1.0) {
    throw std::invalid_argument("hoeffding_eps: bad arguments");
  }
  const double range = hi - lo;
  return range * std::sqrt(std::log(2.0 / delta) /
                           (2.0 * static_cast<double>(n)));
}

}  // namespace collapois::stats
