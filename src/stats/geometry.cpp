#include "stats/geometry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace collapois::stats {

namespace {

void check_same_size(std::size_t a, std::size_t b, const char* who) {
  if (a != b) throw std::invalid_argument(std::string(who) + ": size mismatch");
}

}  // namespace

double dot(std::span<const float> a, std::span<const float> b) {
  check_same_size(a.size(), b.size(), "dot");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return s;
}

double l2_norm(std::span<const float> v) {
  double s = 0.0;
  for (float x : v) s += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(s);
}

double l2_distance(std::span<const float> a, std::span<const float> b) {
  check_same_size(a.size(), b.size(), "l2_distance");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return std::sqrt(s);
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  const double na = l2_norm(a);
  const double nb = l2_norm(b);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return std::clamp(dot(a, b) / (na * nb), -1.0, 1.0);
}

double angle_between(std::span<const float> a, std::span<const float> b) {
  return std::acos(cosine_similarity(a, b));
}

double dot(std::span<const double> a, std::span<const double> b) {
  check_same_size(a.size(), b.size(), "dot");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double l2_norm(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double cosine_similarity(std::span<const double> a,
                         std::span<const double> b) {
  const double na = l2_norm(a);
  const double nb = l2_norm(b);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return std::clamp(dot(a, b) / (na * nb), -1.0, 1.0);
}

std::vector<double> pairwise_angles(
    const std::vector<std::vector<float>>& vectors) {
  std::vector<double> out;
  if (vectors.size() < 2) return out;
  out.reserve(vectors.size() * (vectors.size() - 1) / 2);
  for (std::size_t i = 0; i + 1 < vectors.size(); ++i) {
    for (std::size_t j = i + 1; j < vectors.size(); ++j) {
      out.push_back(angle_between(vectors[i], vectors[j]));
    }
  }
  return out;
}

std::vector<double> angles_to_reference(
    const std::vector<std::vector<float>>& vectors,
    std::span<const float> reference) {
  std::vector<double> out;
  out.reserve(vectors.size());
  for (const auto& v : vectors) {
    out.push_back(angle_between(v, reference));
  }
  return out;
}

}  // namespace collapois::stats
