#include "stats/geometry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "kernels/kernels.h"
#include "runtime/parallel.h"

namespace collapois::stats {

namespace {

void check_same_size(std::size_t a, std::size_t b, const char* who) {
  if (a != b) throw std::invalid_argument(std::string(who) + ": size mismatch");
}

}  // namespace

double dot(std::span<const float> a, std::span<const float> b) {
  check_same_size(a.size(), b.size(), "dot");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return s;
}

double l2_norm(std::span<const float> v) {
  double s = 0.0;
  for (float x : v) s += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(s);
}

double l2_distance(std::span<const float> a, std::span<const float> b) {
  check_same_size(a.size(), b.size(), "l2_distance");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return std::sqrt(s);
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  const double na = l2_norm(a);
  const double nb = l2_norm(b);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return std::clamp(dot(a, b) / (na * nb), -1.0, 1.0);
}

double angle_between(std::span<const float> a, std::span<const float> b) {
  return std::acos(cosine_similarity(a, b));
}

double dot(std::span<const double> a, std::span<const double> b) {
  check_same_size(a.size(), b.size(), "dot");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double l2_norm(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double cosine_similarity(std::span<const double> a,
                         std::span<const double> b) {
  const double na = l2_norm(a);
  const double nb = l2_norm(b);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return std::clamp(dot(a, b) / (na * nb), -1.0, 1.0);
}

void pairwise_sq_distances_naive(const float* rows, std::size_t n,
                                 std::size_t d, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i * n + i] = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const float* a = rows + i * d;
    for (std::size_t j = i + 1; j < n; ++j) {
      const float* b = rows + j * d;
      double s = 0.0;
      for (std::size_t p = 0; p < d; ++p) {
        const double diff =
            static_cast<double>(a[p]) - static_cast<double>(b[p]);
        s += diff * diff;
      }
      out[i * n + j] = out[j * n + i] = s;
    }
  }
}

namespace {

// Row-block edge for the Gram decomposition. Fixed (never derived from
// the pool size) so the set of GEMM calls — and therefore every float —
// is a pure function of n.
constexpr std::size_t kGramBlock = 64;

}  // namespace

void pairwise_sq_distances_gram(const float* rows, std::size_t n,
                                std::size_t d, const double* row_sqnorms,
                                double* out, runtime::ThreadPool* pool) {
  const std::size_t n_blocks = (n + kGramBlock - 1) / kGramBlock;
  // Upper-triangle block pairs (bi <= bj), each an independent task
  // writing the disjoint [bi, bj] and mirrored [bj, bi] regions of `out`.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(n_blocks * (n_blocks + 1) / 2);
  for (std::size_t bi = 0; bi < n_blocks; ++bi) {
    for (std::size_t bj = bi; bj < n_blocks; ++bj) pairs.emplace_back(bi, bj);
  }
  // The Gram product always runs on the blocked kernel set: this helper
  // IS the fast path (the registry's naive defense set routes to the
  // scalar loops above), so it must not degrade when an experiment
  // selects --kernels naive for the NN substrate.
  const kernels::KernelOps& ops =
      kernels::ops_for(kernels::KernelKind::blocked);
  runtime::parallel_for(pool, pairs.size(), [&](std::size_t t) {
    const auto [bi, bj] = pairs[t];
    const std::size_t i0 = bi * kGramBlock;
    const std::size_t j0 = bj * kGramBlock;
    const std::size_t mi = std::min(kGramBlock, n - i0);
    const std::size_t mj = std::min(kGramBlock, n - j0);
    // G = A_I * A_J^T for this block pair, accumulated by the blocked
    // GEMM into a zeroed scratch tile.
    std::vector<float> g(mi * mj, 0.0f);
    ops.gemm_a_bt_accum(rows + i0 * d, rows + j0 * d, g.data(), mi, d, mj,
                        nullptr, nullptr);
    for (std::size_t i = 0; i < mi; ++i) {
      const std::size_t gi = i0 + i;
      for (std::size_t j = 0; j < mj; ++j) {
        const std::size_t gj = j0 + j;
        if (gj == gi) {
          out[gi * n + gi] = 0.0;
          continue;
        }
        const double d2 =
            std::max(0.0, row_sqnorms[gi] + row_sqnorms[gj] -
                              2.0 * static_cast<double>(g[i * mj + j]));
        out[gi * n + gj] = d2;
        if (bi != bj) out[gj * n + gi] = d2;
      }
    }
  });
}

std::vector<double> pairwise_angles(
    const std::vector<std::vector<float>>& vectors) {
  std::vector<double> out;
  if (vectors.size() < 2) return out;
  out.reserve(vectors.size() * (vectors.size() - 1) / 2);
  for (std::size_t i = 0; i + 1 < vectors.size(); ++i) {
    for (std::size_t j = i + 1; j < vectors.size(); ++j) {
      out.push_back(angle_between(vectors[i], vectors[j]));
    }
  }
  return out;
}

std::vector<double> angles_to_reference(
    const std::vector<std::vector<float>>& vectors,
    std::span<const float> reference) {
  std::vector<double> out;
  out.reserve(vectors.size());
  for (const auto& v : vectors) {
    out.push_back(angle_between(v, reference));
  }
  return out;
}

}  // namespace collapois::stats
