// Special functions needed by the statistical tests (Section V,
// "Bypassing Defenses"): log-gamma, regularized incomplete beta, and the
// distribution functions built on them (normal, Student-t, F,
// Kolmogorov). Implemented from scratch so the library has no external
// numerical dependencies.
#pragma once

namespace collapois::stats {

// Natural log of the Gamma function (Lanczos approximation, |err| < 1e-13
// for x > 0).
double log_gamma(double x);

// Regularized incomplete beta function I_x(a, b) for x in [0,1], a,b > 0.
// Continued-fraction evaluation (Lentz's algorithm).
double incomplete_beta(double a, double b, double x);

// Standard normal CDF.
double normal_cdf(double x);

// Standard normal quantile (Acklam's rational approximation refined by one
// Newton step).
double normal_quantile(double p);

// Two-sided survival probability of Student's t with `df` degrees of
// freedom: P(|T| >= |t|).
double student_t_sf_two_sided(double t, double df);

// Survival function of the F distribution: P(F >= f) with (d1, d2) degrees
// of freedom.
double f_sf(double f, double d1, double d2);

// Kolmogorov distribution survival function Q(lambda) = P(sqrt(n) D_n >
// lambda), asymptotic series. Used for the two-sample KS test p-value.
double kolmogorov_sf(double lambda);

}  // namespace collapois::stats
