// Flat-vector geometry used everywhere gradients are treated as points in
// R^m: dot products, norms, cosine similarity, and the angle statistics at
// the heart of the paper (Figs. 3 and 6, Theorem 1's beta_i angles).
//
// Gradients and model parameters are stored as std::vector<float>; the
// accumulating arithmetic is done in double for stability.
#pragma once

#include <span>
#include <vector>

namespace collapois::stats {

double dot(std::span<const float> a, std::span<const float> b);
double l2_norm(std::span<const float> v);
double l2_distance(std::span<const float> a, std::span<const float> b);

// Cosine similarity in [-1, 1]; 0 if either vector is zero.
double cosine_similarity(std::span<const float> a, std::span<const float> b);

// Angle between two vectors in radians, in [0, pi]; 0 if either is zero.
double angle_between(std::span<const float> a, std::span<const float> b);

// Double-precision overloads (label distributions in Eq. 9 are doubles).
double dot(std::span<const double> a, std::span<const double> b);
double l2_norm(std::span<const double> v);
double cosine_similarity(std::span<const double> a,
                         std::span<const double> b);

// Pairwise angles among a set of vectors (upper triangle, i < j), the
// quantity plotted in Fig. 3.
std::vector<double> pairwise_angles(
    const std::vector<std::vector<float>>& vectors);

// Angle of each vector against a fixed reference direction (Theorem 1's
// beta_i with the aggregated malicious gradient as reference).
std::vector<double> angles_to_reference(
    const std::vector<std::vector<float>>& vectors,
    std::span<const float> reference);

}  // namespace collapois::stats
