// Flat-vector geometry used everywhere gradients are treated as points in
// R^m: dot products, norms, cosine similarity, and the angle statistics at
// the heart of the paper (Figs. 3 and 6, Theorem 1's beta_i angles).
//
// Gradients and model parameters are stored as std::vector<float>; the
// accumulating arithmetic is done in double for stability.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace collapois::runtime {
class ThreadPool;
}

namespace collapois::stats {

double dot(std::span<const float> a, std::span<const float> b);
double l2_norm(std::span<const float> v);
double l2_distance(std::span<const float> a, std::span<const float> b);

// Cosine similarity in [-1, 1]; 0 if either vector is zero.
double cosine_similarity(std::span<const float> a, std::span<const float> b);

// Angle between two vectors in radians, in [0, pi]; 0 if either is zero.
double angle_between(std::span<const float> a, std::span<const float> b);

// Double-precision overloads (label distributions in Eq. 9 are doubles).
double dot(std::span<const double> a, std::span<const double> b);
double l2_norm(std::span<const double> v);
double cosine_similarity(std::span<const double> a,
                         std::span<const double> b);

// --- pairwise squared distances -----------------------------------------
// The O(n^2 d) kernel at the heart of the distance-based defenses (Krum's
// neighbour scores, FLARE's trust estimates). Both functions fill the full
// symmetric n x n matrix `out` (row-major, zero diagonal) of squared L2
// distances between the rows of the contiguous row-major [n x d] array
// `rows`.
//
// naive: per-pair scalar loops with double accumulation — the reference
// path, summing each pair exactly the way the old per-defense loops did.
void pairwise_sq_distances_naive(const float* rows, std::size_t n,
                                 std::size_t d, double* out);

// gram: the Gram-matrix identity ||a_i - a_j||^2 =
// ||a_i||^2 + ||a_j||^2 - 2 (A A^T)_ij over the blocked GEMM
// (kernels::ops_for(blocked)), computed in fixed 64-row block pairs of the
// upper triangle dispatched on `pool` (nullptr = inline). The block
// decomposition depends only on n, and every block pair writes a disjoint
// region of `out`, so the result is bit-identical for any thread count.
// `row_sqnorms` must hold the double-accumulated squared norm of each row.
// Entries are clamped at zero (the identity can round slightly negative
// for near-identical rows); results agree with the naive path to GEMM
// float-accumulation tolerance, not bit-for-bit.
void pairwise_sq_distances_gram(const float* rows, std::size_t n,
                                std::size_t d, const double* row_sqnorms,
                                double* out, runtime::ThreadPool* pool);

// Pairwise angles among a set of vectors (upper triangle, i < j), the
// quantity plotted in Fig. 3.
std::vector<double> pairwise_angles(
    const std::vector<std::vector<float>>& vectors);

// Angle of each vector against a fixed reference direction (Theorem 1's
// beta_i with the aggregated malicious gradient as reference).
std::vector<double> angles_to_reference(
    const std::vector<std::vector<float>>& vectors,
    std::span<const float> reference);

}  // namespace collapois::stats
