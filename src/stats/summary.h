// Descriptive statistics over samples, used throughout the telemetry and
// theory modules (mean/variance of gradient angles, medians for robust
// aggregation, quantiles for reporting).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace collapois::stats {

// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(std::span<const double> xs);

// Sample standard deviation.
double stddev(std::span<const double> xs);

// Median (copies and nth_element's). 0 for empty input.
double median(std::span<const double> xs);

// Linear-interpolated quantile, q in [0, 1].
double quantile(std::span<const double> xs, double q);

// Min / max; 0 for empty input.
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

// Streaming mean/variance accumulator (Welford). Cheap to copy.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Unbiased sample variance.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Summary of a sample, convenient for table printing.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

}  // namespace collapois::stats
