// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component in the library (data synthesis, Dirichlet
// partitioning, client sampling, SGD mini-batching, the attacker's dynamic
// learning rate psi ~ U[a,b], defense noise) draws from an explicitly-seeded
// Rng so that experiments are reproducible bit-for-bit across runs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace collapois::stats {

// xoshiro256++ generator with splitmix64 seeding.
//
// Chosen over std::mt19937 for speed and for a guaranteed-stable stream
// across standard-library implementations (distribution classes in
// <random> are not portable; ours are).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  // Standard normal via Box-Muller (cached second variate).
  double normal();

  // Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  // Bernoulli trial with success probability p.
  bool bernoulli(double p);

  // Gamma(shape, 1) via Marsaglia-Tsang (handles shape < 1 by boosting).
  double gamma(double shape);

  // Symmetric Dirichlet(alpha) over `dim` categories; entries sum to 1.
  std::vector<double> dirichlet(double alpha, std::size_t dim);

  // General Dirichlet with per-category concentration.
  std::vector<double> dirichlet(std::span<const double> alpha);

  // Sample an index from an (unnormalized, non-negative) weight vector.
  std::size_t categorical(std::span<const double> weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) (k <= n), unsorted.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // Derive an independent child stream (for per-client generators).
  Rng fork();

  // Complete generator state, exposed so checkpoints can restore the
  // stream bit-exactly (the Box-Muller cache is part of the state: losing
  // it would desynchronize every subsequent normal() draw).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State state() const;
  void set_state(const State& state);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace collapois::stats
