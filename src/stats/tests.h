// The hypothesis tests the paper's "Bypassing Defenses" evaluation uses to
// show malicious and benign gradients are statistically indistinguishable:
// Welch's t-test (means), Levene's test (variances), the two-sample
// Kolmogorov-Smirnov test (distributions), and the 3-sigma outlier rule.
// Also the Hoeffding concentration bound used in Theorem 1's approximation
// error analysis (Fig. 4).
#pragma once

#include <cstddef>
#include <span>

namespace collapois::stats {

struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;
  // Convenience: reject H0 at the 5% level?
  bool significant_at_05() const { return p_value < 0.05; }
};

// Welch's unequal-variance two-sample t-test for equality of means
// (two-sided). Requires at least 2 samples on each side.
TestResult welch_t_test(std::span<const double> a, std::span<const double> b);

// Levene's test for equality of variances (Brown-Forsythe median-centered
// variant, the robust form recommended by Lim & Loh [39]).
TestResult levene_test(std::span<const double> a, std::span<const double> b);

// Two-sample Kolmogorov-Smirnov test with the asymptotic p-value.
TestResult ks_test(std::span<const double> a, std::span<const double> b);

// Fraction of `points` falling outside mean(background) +/- 3*sd(background)
// — the 3-sigma outlier rule [41]. The paper reports ~3.5% of malicious
// gradients flagged, i.e. indistinguishable from the ~0.3%-5% base rate.
double three_sigma_outlier_rate(std::span<const double> background,
                                std::span<const double> points);

// Hoeffding bound: for n i.i.d. samples in [lo, hi], the deviation of the
// sample mean from the true mean exceeds eps with probability at most
// 2*exp(-2 n eps^2 / (hi-lo)^2). Returns that probability.
double hoeffding_tail(std::size_t n, double eps, double lo, double hi);

// Inverse use of the bound: the eps such that the tail probability equals
// `delta` (confidence 1 - delta).
double hoeffding_eps(std::size_t n, double delta, double lo, double hi);

}  // namespace collapois::stats
