#include "stats/rng.h"

#include <cmath>
#include <stdexcept>

namespace collapois::stats {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_int: n must be > 0");
  // Lemire rejection-free-ish bounded generation with rejection of the
  // biased tail.
  const std::uint64_t threshold = (-n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::gamma(double shape) {
  if (shape <= 0.0) throw std::invalid_argument("gamma: shape must be > 0");
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^{1/a}.
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::dirichlet(double alpha, std::size_t dim) {
  std::vector<double> a(dim, alpha);
  return dirichlet(a);
}

std::vector<double> Rng::dirichlet(std::span<const double> alpha) {
  std::vector<double> out(alpha.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    out[i] = gamma(alpha[i]);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Numerically degenerate (all gammas underflowed, possible for tiny
    // alpha): fall back to a one-hot draw, which is the Dir(alpha -> 0)
    // limit.
    std::fill(out.begin(), out.end(), 0.0);
    out[static_cast<std::size_t>(uniform_int(out.size()))] = 1.0;
    return out;
  }
  for (auto& v : out) v /= sum;
  return out;
}

std::size_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("categorical: weights sum to zero");
  }
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  // Partial Fisher-Yates over an index array. For the sizes used here
  // (n = number of clients) the O(n) allocation is fine.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_int(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xa5a5a5a5deadbeefULL); }

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.cached_normal = cached_normal_;
  st.has_cached_normal = has_cached_normal_;
  return st;
}

void Rng::set_state(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace collapois::stats
