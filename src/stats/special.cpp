#include "stats/special.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace collapois::stats {

double log_gamma(double x) {
  if (x <= 0.0) throw std::domain_error("log_gamma: x must be > 0");
  // Lanczos coefficients (g = 7, n = 9).
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double a = kCoef[0];
  const double t = z + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (z + static_cast<double>(i));
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(a);
}

namespace {

// Continued fraction for the incomplete beta function (Numerical-Recipes
// style modified Lentz algorithm).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) {
    throw std::domain_error("incomplete_beta: a, b must be > 0");
  }
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::domain_error("normal_quantile: p must be in (0,1)");
  }
  // Acklam's approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Newton refinement using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  return x - u / (1.0 + 0.5 * x * u);
}

double student_t_sf_two_sided(double t, double df) {
  if (df <= 0.0) throw std::domain_error("student_t: df must be > 0");
  const double x = df / (df + t * t);
  return incomplete_beta(0.5 * df, 0.5, x);
}

double f_sf(double f, double d1, double d2) {
  if (f <= 0.0) return 1.0;
  const double x = d2 / (d2 + d1 * f);
  return incomplete_beta(0.5 * d2, 0.5 * d1, x);
}

double kolmogorov_sf(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += (k % 2 == 1 ? 2.0 : -2.0) * term;
    if (term < 1e-16) break;
  }
  return std::min(std::max(sum, 0.0), 1.0);
}

}  // namespace collapois::stats
