// Small dense linear algebra kernels for the nn/ substrate: plain
// triple-loop GEMM/GEMV variants sized for LeNet-scale layers, plus
// bilinear image sampling used by the WaNet-style warp trigger.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/tensor.h"

namespace collapois::tensor {

// C[m x n] = A[m x k] * B[k x n]. C must be pre-sized; it is overwritten.
void gemm(std::span<const float> a, std::span<const float> b,
          std::span<float> c, std::size_t m, std::size_t k, std::size_t n);

// C[m x n] += A^T[m x k] * B[k x n] where A is stored as [k x m].
void gemm_at_b_accum(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, std::size_t k, std::size_t m,
                     std::size_t n);

// C[m x n] += A[m x k] * B^T[k x n] where B is stored as [n x k].
void gemm_a_bt_accum(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, std::size_t m, std::size_t k,
                     std::size_t n);

// y[m] = A[m x n] * x[n].
void gemv(std::span<const float> a, std::span<const float> x,
          std::span<float> y, std::size_t m, std::size_t n);

// Sample image(y, x) with bilinear interpolation and zero padding outside
// the image. `image` is a rank-2 (H x W) tensor.
float bilinear_sample(const Tensor& image, double y, double x);

}  // namespace collapois::tensor
