#include "tensor/linalg.h"

#include <cmath>
#include <stdexcept>

namespace collapois::tensor {

void gemm(std::span<const float> a, std::span<const float> b,
          std::span<float> c, std::size_t m, std::size_t k, std::size_t n) {
  if (a.size() != m * k || b.size() != k * n || c.size() != m * n) {
    throw std::invalid_argument("gemm: size mismatch");
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) c[i * n + j] = 0.0f;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = a[i * k + p];
      if (aip == 0.0f) continue;
      const float* brow = &b[p * n];
      float* crow = &c[i * n];
      for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

void gemm_at_b_accum(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, std::size_t k, std::size_t m,
                     std::size_t n) {
  if (a.size() != k * m || b.size() != k * n || c.size() != m * n) {
    throw std::invalid_argument("gemm_at_b_accum: size mismatch");
  }
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = &a[p * m];
    const float* brow = &b[p * n];
    for (std::size_t i = 0; i < m; ++i) {
      const float api = arow[i];
      if (api == 0.0f) continue;
      float* crow = &c[i * n];
      for (std::size_t j = 0; j < n; ++j) crow[j] += api * brow[j];
    }
  }
}

void gemm_a_bt_accum(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, std::size_t m, std::size_t k,
                     std::size_t n) {
  if (a.size() != m * k || b.size() != n * k || c.size() != m * n) {
    throw std::invalid_argument("gemm_a_bt_accum: size mismatch");
  }
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = &a[i * k];
    float* crow = &c[i * n];
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = &b[j * k];
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] += static_cast<float>(s);
    }
  }
}

void gemv(std::span<const float> a, std::span<const float> x,
          std::span<float> y, std::size_t m, std::size_t n) {
  if (a.size() != m * n || x.size() != n || y.size() != m) {
    throw std::invalid_argument("gemv: size mismatch");
  }
  for (std::size_t i = 0; i < m; ++i) {
    double s = 0.0;
    const float* arow = &a[i * n];
    for (std::size_t j = 0; j < n; ++j) s += arow[j] * x[j];
    y[i] = static_cast<float>(s);
  }
}

float bilinear_sample(const Tensor& image, double y, double x) {
  if (image.rank() != 2) {
    throw std::invalid_argument("bilinear_sample: rank-2 image required");
  }
  const auto h = static_cast<std::ptrdiff_t>(image.dim(0));
  const auto w = static_cast<std::ptrdiff_t>(image.dim(1));
  const auto y0 = static_cast<std::ptrdiff_t>(std::floor(y));
  const auto x0 = static_cast<std::ptrdiff_t>(std::floor(x));
  const double fy = y - static_cast<double>(y0);
  const double fx = x - static_cast<double>(x0);

  auto pixel = [&](std::ptrdiff_t yy, std::ptrdiff_t xx) -> double {
    if (yy < 0 || yy >= h || xx < 0 || xx >= w) return 0.0;
    return image.data()[static_cast<std::size_t>(yy * w + xx)];
  };

  const double v00 = pixel(y0, x0);
  const double v01 = pixel(y0, x0 + 1);
  const double v10 = pixel(y0 + 1, x0);
  const double v11 = pixel(y0 + 1, x0 + 1);
  const double top = v00 * (1.0 - fx) + v01 * fx;
  const double bot = v10 * (1.0 - fx) + v11 * fx;
  return static_cast<float>(top * (1.0 - fy) + bot * fy);
}

}  // namespace collapois::tensor
