// A minimal dense float tensor: contiguous row-major storage plus a shape.
// This is the data currency of the nn/ and trojan/ substrates (images are
// rank-3 CHW tensors, embeddings rank-1). Deliberately small: the library
// only needs what LeNet-scale training and WaNet-style warping require.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace collapois::tensor {

class Tensor {
 public:
  Tensor() = default;

  // Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);

  // Tensor adopting existing data; data.size() must equal the shape volume.
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  std::size_t dim(std::size_t axis) const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // Checked multi-dimensional accessors for the common ranks.
  float& at(std::size_t i);
  float at(std::size_t i) const;
  float& at(std::size_t i, std::size_t j);
  float at(std::size_t i, std::size_t j) const;
  float& at(std::size_t i, std::size_t j, std::size_t k);
  float at(std::size_t i, std::size_t j, std::size_t k) const;

  void fill(float value);

  // Reshape in place; new volume must match.
  void reshape(std::vector<std::size_t> shape);

  // Rvalue reshape-and-return: lets callers chain a reshape onto a moved
  // tensor without touching the buffer (Flatten's zero-copy path).
  Tensor reshaped(std::vector<std::size_t> shape) &&;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::size_t flat_index(std::size_t i, std::size_t j) const;
  std::size_t flat_index(std::size_t i, std::size_t j, std::size_t k) const;

  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace collapois::tensor
