#include "tensor/vecops.h"

#include <cmath>
#include <stdexcept>

#include "kernels/kernels.h"
#include "stats/geometry.h"

namespace collapois::tensor {

namespace {

void check_same(std::size_t a, std::size_t b) {
  if (a != b) throw std::invalid_argument("vecops: size mismatch");
}

}  // namespace

FlatVec add(std::span<const float> a, std::span<const float> b) {
  check_same(a.size(), b.size());
  FlatVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

FlatVec sub(std::span<const float> a, std::span<const float> b) {
  check_same(a.size(), b.size());
  FlatVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

FlatVec scale(std::span<const float> a, double s) {
  FlatVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = static_cast<float>(s * a[i]);
  }
  return out;
}

void axpy_inplace(FlatVec& a, double s, std::span<const float> b) {
  check_same(a.size(), b.size());
  kernels::axpy_inplace(a.data(), s, b.data(), a.size());
}

void scale_inplace(FlatVec& a, double s) {
  for (auto& x : a) x = static_cast<float>(x * s);
}

FlatVec zeros(std::size_t n) { return FlatVec(n, 0.0f); }

FlatVec mean_of(const std::vector<FlatVec>& vs) {
  if (vs.empty()) throw std::invalid_argument("mean_of: empty set");
  // Accumulate in double and round to float exactly once at the end, so
  // the result is independent of summation grouping (parallel reduction
  // order) up to the final rounding.
  std::vector<double> acc(vs[0].size(), 0.0);
  for (const auto& v : vs) {
    check_same(acc.size(), v.size());
    kernels::weighted_accumulate(acc.data(), 1.0, v.data(), acc.size());
  }
  FlatVec out(acc.size());
  kernels::scaled_round(acc.data(), 1.0 / static_cast<double>(vs.size()),
                        out.data(), acc.size());
  return out;
}

FlatVec weighted_mean_of(const std::vector<FlatVec>& vs,
                         std::span<const double> weights) {
  if (vs.empty()) throw std::invalid_argument("weighted_mean_of: empty set");
  check_same(vs.size(), weights.size());
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_mean_of: w < 0");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("weighted_mean_of: weights sum to zero");
  }
  // Same single-rounding scheme as mean_of: raw weights accumulate into a
  // double buffer, normalization and the only float rounding happen last.
  std::vector<double> acc(vs[0].size(), 0.0);
  for (std::size_t i = 0; i < vs.size(); ++i) {
    check_same(acc.size(), vs[i].size());
    kernels::weighted_accumulate(acc.data(), weights[i], vs[i].data(),
                                 acc.size());
  }
  FlatVec out(acc.size());
  kernels::scaled_round(acc.data(), 1.0 / total, out.data(), acc.size());
  return out;
}

FlatVec mean_of(std::span<const std::span<const float>> vs) {
  if (vs.empty()) throw std::invalid_argument("mean_of: empty set");
  std::vector<double> acc(vs[0].size(), 0.0);
  for (const auto& v : vs) {
    check_same(acc.size(), v.size());
    kernels::weighted_accumulate(acc.data(), 1.0, v.data(), acc.size());
  }
  FlatVec out(acc.size());
  kernels::scaled_round(acc.data(), 1.0 / static_cast<double>(vs.size()),
                        out.data(), acc.size());
  return out;
}

FlatVec weighted_mean_of(std::span<const std::span<const float>> vs,
                         std::span<const double> weights) {
  if (vs.empty()) throw std::invalid_argument("weighted_mean_of: empty set");
  check_same(vs.size(), weights.size());
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_mean_of: w < 0");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("weighted_mean_of: weights sum to zero");
  }
  std::vector<double> acc(vs[0].size(), 0.0);
  for (std::size_t i = 0; i < vs.size(); ++i) {
    check_same(acc.size(), vs[i].size());
    kernels::weighted_accumulate(acc.data(), weights[i], vs[i].data(),
                                 acc.size());
  }
  FlatVec out(acc.size());
  kernels::scaled_round(acc.data(), 1.0 / total, out.data(), acc.size());
  return out;
}

double clip_l2_inplace(FlatVec& v, double bound) {
  if (bound <= 0.0) throw std::invalid_argument("clip_l2: bound must be > 0");
  const double n = stats::l2_norm(v);
  if (n <= bound) return 1.0;
  const double f = bound / n;
  scale_inplace(v, f);
  return f;
}

void rescale_to_norm_inplace(FlatVec& v, double target) {
  if (target < 0.0) {
    throw std::invalid_argument("rescale_to_norm: target must be >= 0");
  }
  const double n = stats::l2_norm(v);
  if (n <= 0.0) return;
  scale_inplace(v, target / n);
}

}  // namespace collapois::tensor
