#include "tensor/tensor.h"

#include <numeric>
#include <stdexcept>

namespace collapois::tensor {

namespace {

std::size_t volume(const std::vector<std::size_t>& shape) {
  std::size_t v = 1;
  for (std::size_t d : shape) v *= d;
  return shape.empty() ? 0 : v;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(volume(shape_), 0.0f) {}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != volume(shape_)) {
    throw std::invalid_argument("Tensor: data size does not match shape");
  }
}

std::size_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size()) {
    throw std::out_of_range("Tensor::dim: axis out of range");
  }
  return shape_[axis];
}

float& Tensor::at(std::size_t i) {
  if (rank() != 1 || i >= shape_[0]) throw std::out_of_range("Tensor::at(1)");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  return const_cast<Tensor*>(this)->at(i);
}

std::size_t Tensor::flat_index(std::size_t i, std::size_t j) const {
  if (rank() != 2 || i >= shape_[0] || j >= shape_[1]) {
    throw std::out_of_range("Tensor::at(2)");
  }
  return i * shape_[1] + j;
}

float& Tensor::at(std::size_t i, std::size_t j) {
  return data_[flat_index(i, j)];
}

float Tensor::at(std::size_t i, std::size_t j) const {
  return data_[flat_index(i, j)];
}

std::size_t Tensor::flat_index(std::size_t i, std::size_t j,
                               std::size_t k) const {
  if (rank() != 3 || i >= shape_[0] || j >= shape_[1] || k >= shape_[2]) {
    throw std::out_of_range("Tensor::at(3)");
  }
  return (i * shape_[1] + j) * shape_[2] + k;
}

float& Tensor::at(std::size_t i, std::size_t j, std::size_t k) {
  return data_[flat_index(i, j, k)];
}

float Tensor::at(std::size_t i, std::size_t j, std::size_t k) const {
  return data_[flat_index(i, j, k)];
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::reshape(std::vector<std::size_t> shape) {
  if (volume(shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: volume mismatch");
  }
  shape_ = std::move(shape);
}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) && {
  reshape(std::move(shape));
  return std::move(*this);
}

}  // namespace collapois::tensor
