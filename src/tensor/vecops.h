// Vector arithmetic on flat parameter/gradient vectors (std::vector<float>).
// These are the primitives FL aggregation, attacks, and defenses compose:
// the global model, every client update, and the Trojaned model X are all
// flat vectors in R^m.
#pragma once

#include <span>
#include <vector>

namespace collapois::tensor {

using FlatVec = std::vector<float>;

// out = a + b (sizes must match).
FlatVec add(std::span<const float> a, std::span<const float> b);

// out = a - b.
FlatVec sub(std::span<const float> a, std::span<const float> b);

// out = s * a.
FlatVec scale(std::span<const float> a, double s);

// a += s * b (axpy).
void axpy_inplace(FlatVec& a, double s, std::span<const float> b);

// a *= s.
void scale_inplace(FlatVec& a, double s);

// Zero vector of the given size.
FlatVec zeros(std::size_t n);

// Unweighted element-wise mean of a set of equal-length vectors.
// Accumulates in double precision and rounds to float once, so the result
// does not depend on how the inputs were grouped for summation.
FlatVec mean_of(const std::vector<FlatVec>& vs);

// Weighted element-wise mean; weights need not be normalized. Same
// double-accumulate / round-once contract as mean_of.
FlatVec weighted_mean_of(const std::vector<FlatVec>& vs,
                         std::span<const double> weights);

// View-based overloads: identical numerics over borrowed rows (e.g. the
// rows of an fl::UpdateMatrix, or spans straight into ClientUpdate
// deltas), so aggregation code never has to deep-copy vectors just to
// average them.
FlatVec mean_of(std::span<const std::span<const float>> vs);
FlatVec weighted_mean_of(std::span<const std::span<const float>> vs,
                         std::span<const double> weights);

// If ||v||_2 > bound, rescale v to have norm `bound`; otherwise unchanged.
// Returns the factor applied (1 when unchanged).
double clip_l2_inplace(FlatVec& v, double bound);

// Rescale v so that ||v||_2 == target (no-op for the zero vector).
// Used for the tau-upscaling in Theorem 3's stealth analysis.
void rescale_to_norm_inplace(FlatVec& v, double target);

}  // namespace collapois::tensor
