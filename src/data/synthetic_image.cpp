#include "data/synthetic_image.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/linalg.h"

namespace collapois::data {

SyntheticImageGenerator::SyntheticImageGenerator(SyntheticImageConfig config,
                                                 std::uint64_t seed)
    : config_(config) {
  if (config_.num_classes == 0 || config_.height == 0 || config_.width == 0) {
    throw std::invalid_argument("SyntheticImageGenerator: empty config");
  }
  if (config_.prototype_grid < 2) {
    throw std::invalid_argument(
        "SyntheticImageGenerator: prototype_grid must be >= 2");
  }
  stats::Rng rng(seed);
  prototypes_.reserve(config_.num_classes);
  const std::size_t g = config_.prototype_grid;
  for (std::size_t cls = 0; cls < config_.num_classes; ++cls) {
    // Random control grid in [0, 1].
    Tensor grid({g, g});
    for (auto& v : grid.storage()) {
      v = static_cast<float>(rng.uniform());
    }
    // Bilinear upsample to the target resolution.
    Tensor proto({config_.height, config_.width});
    for (std::size_t y = 0; y < config_.height; ++y) {
      for (std::size_t x = 0; x < config_.width; ++x) {
        const double gy = static_cast<double>(y) /
                          static_cast<double>(config_.height - 1) *
                          static_cast<double>(g - 1);
        const double gx = static_cast<double>(x) /
                          static_cast<double>(config_.width - 1) *
                          static_cast<double>(g - 1);
        proto.at(y, x) = tensor::bilinear_sample(grid, gy, gx);
      }
    }
    // Contrast-stretch so prototypes occupy the full dynamic range and
    // classes are comfortably separable before noise.
    const auto [mn_it, mx_it] =
        std::minmax_element(proto.storage().begin(), proto.storage().end());
    const float mn = *mn_it;
    const float range = std::max(*mx_it - mn, 1e-6f);
    for (auto& v : proto.storage()) v = (v - mn) / range;
    prototypes_.push_back(std::move(proto));
  }
}

const Tensor& SyntheticImageGenerator::prototype(std::size_t label) const {
  return prototypes_.at(label);
}

Example SyntheticImageGenerator::sample(int label, stats::Rng& rng) const {
  if (label < 0 ||
      static_cast<std::size_t>(label) >= config_.num_classes) {
    throw std::invalid_argument("SyntheticImageGenerator: label out of range");
  }
  const auto& proto = prototypes_[static_cast<std::size_t>(label)];
  const std::size_t h = config_.height;
  const std::size_t w = config_.width;

  int dy = 0;
  int dx = 0;
  if (config_.max_shift > 0) {
    const int span = 2 * config_.max_shift + 1;
    dy = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(span))) -
         config_.max_shift;
    dx = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(span))) -
         config_.max_shift;
  }

  Example e;
  e.label = label;
  e.x = Tensor({1, h, w});
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const std::ptrdiff_t sy = static_cast<std::ptrdiff_t>(y) + dy;
      const std::ptrdiff_t sx = static_cast<std::ptrdiff_t>(x) + dx;
      float v = 0.0f;
      if (sy >= 0 && sy < static_cast<std::ptrdiff_t>(h) && sx >= 0 &&
          sx < static_cast<std::ptrdiff_t>(w)) {
        v = proto.at(static_cast<std::size_t>(sy),
                     static_cast<std::size_t>(sx));
      }
      v += static_cast<float>(rng.normal(0.0, config_.noise_std));
      e.x.at(0, y, x) = std::clamp(v, 0.0f, 1.0f);
    }
  }
  return e;
}

Dataset SyntheticImageGenerator::generate_class(int label, std::size_t count,
                                                stats::Rng& rng) const {
  Dataset d(config_.num_classes);
  d.reserve(count);
  for (std::size_t i = 0; i < count; ++i) d.add(sample(label, rng));
  return d;
}

Dataset SyntheticImageGenerator::generate(
    std::span<const std::size_t> class_counts, stats::Rng& rng) const {
  if (class_counts.size() != config_.num_classes) {
    throw std::invalid_argument(
        "SyntheticImageGenerator::generate: counts size mismatch");
  }
  Dataset d(config_.num_classes);
  for (std::size_t cls = 0; cls < class_counts.size(); ++cls) {
    for (std::size_t i = 0; i < class_counts[cls]; ++i) {
      d.add(sample(static_cast<int>(cls), rng));
    }
  }
  return d;
}

}  // namespace collapois::data
