#include "data/partition.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace collapois::data {

std::vector<std::size_t> dirichlet_class_counts(stats::Rng& rng, double alpha,
                                                std::size_t num_classes,
                                                std::size_t total) {
  if (num_classes == 0) {
    throw std::invalid_argument("dirichlet_class_counts: num_classes == 0");
  }
  const std::vector<double> p = rng.dirichlet(alpha, num_classes);

  // Largest-remainder rounding so counts sum exactly to `total`.
  std::vector<std::size_t> counts(num_classes, 0);
  std::vector<std::pair<double, std::size_t>> remainders(num_classes);
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    const double exact = p[c] * static_cast<double>(total);
    counts[c] = static_cast<std::size_t>(exact);
    assigned += counts[c];
    remainders[c] = {exact - static_cast<double>(counts[c]), c};
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < total; ++i) {
    counts[remainders[i % num_classes].second] += 1;
    ++assigned;
  }
  return counts;
}

std::vector<Dataset> partition_dirichlet(const Dataset& d,
                                         std::size_t n_clients, double alpha,
                                         stats::Rng& rng) {
  if (n_clients == 0) {
    throw std::invalid_argument("partition_dirichlet: n_clients == 0");
  }
  // Group example indices by label.
  std::vector<std::vector<std::size_t>> by_label(d.num_classes());
  for (std::size_t i = 0; i < d.size(); ++i) {
    by_label[static_cast<std::size_t>(d[i].label)].push_back(i);
  }

  std::vector<Dataset> out(n_clients, Dataset(d.num_classes()));
  for (auto& indices : by_label) {
    rng.shuffle(indices);
    const std::vector<double> shares = rng.dirichlet(alpha, n_clients);
    // Deal this class's examples to clients proportionally to shares.
    std::size_t cursor = 0;
    double cumulative = 0.0;
    for (std::size_t c = 0; c < n_clients; ++c) {
      cumulative += shares[c];
      const std::size_t end = (c + 1 == n_clients)
                                  ? indices.size()
                                  : static_cast<std::size_t>(
                                        cumulative *
                                        static_cast<double>(indices.size()));
      for (; cursor < end && cursor < indices.size(); ++cursor) {
        out[c].add(d[indices[cursor]]);
      }
    }
  }
  return out;
}

std::vector<std::vector<double>> FederatedData::client_label_histograms()
    const {
  std::vector<std::vector<double>> out;
  out.reserve(clients.size());
  for (const auto& c : clients) {
    std::vector<double> hist(num_classes, 0.0);
    for (const Dataset* part : {&c.train, &c.test, &c.validation}) {
      const auto h = part->label_histogram();
      for (std::size_t j = 0; j < num_classes; ++j) hist[j] += h[j];
    }
    out.push_back(std::move(hist));
  }
  return out;
}

}  // namespace collapois::data
