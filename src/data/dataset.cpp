#include "data/dataset.h"

#include <algorithm>
#include <stdexcept>

namespace collapois::data {

void Dataset::append(const Dataset& other) {
  if (num_classes_ == 0) num_classes_ = other.num_classes_;
  if (other.num_classes_ != num_classes_) {
    throw std::invalid_argument("Dataset::append: class count mismatch");
  }
  examples_.insert(examples_.end(), other.examples_.begin(),
                   other.examples_.end());
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(num_classes_);
  out.reserve(indices.size());
  for (std::size_t i : indices) out.add(examples_.at(i));
  return out;
}

std::vector<double> Dataset::label_histogram() const {
  std::vector<double> hist(num_classes_, 0.0);
  for (const auto& e : examples_) {
    if (e.label < 0 || static_cast<std::size_t>(e.label) >= num_classes_) {
      throw std::logic_error("Dataset: label out of range");
    }
    hist[static_cast<std::size_t>(e.label)] += 1.0;
  }
  return hist;
}

std::vector<double> Dataset::cumulative_label_distribution() const {
  std::vector<double> cl = label_histogram();
  for (std::size_t j = 1; j < cl.size(); ++j) cl[j] += cl[j - 1];
  return cl;
}

ClientSplit split_client_data(const Dataset& d, stats::Rng& rng,
                              double train_frac, double test_frac) {
  if (train_frac <= 0.0 || test_frac < 0.0 || train_frac + test_frac > 1.0) {
    throw std::invalid_argument("split_client_data: bad fractions");
  }
  std::vector<std::size_t> idx(d.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);

  const std::size_t n = d.size();
  std::size_t n_train = static_cast<std::size_t>(
      static_cast<double>(n) * train_frac);
  std::size_t n_test =
      static_cast<std::size_t>(static_cast<double>(n) * test_frac);
  if (n > 0 && n_train == 0) n_train = 1;
  if (n_train + n_test > n) n_test = n - n_train;

  ClientSplit s;
  s.train = d.subset(std::span<const std::size_t>(idx.data(), n_train));
  s.test = d.subset(
      std::span<const std::size_t>(idx.data() + n_train, n_test));
  s.validation = d.subset(std::span<const std::size_t>(
      idx.data() + n_train + n_test, n - n_train - n_test));
  return s;
}

Batch make_batch(const Dataset& d, std::span<const std::size_t> indices) {
  if (indices.empty()) throw std::invalid_argument("make_batch: empty batch");
  const auto& first = d[indices[0]].x;
  std::vector<std::size_t> shape;
  shape.push_back(indices.size());
  for (std::size_t dim : first.shape()) shape.push_back(dim);

  Batch batch;
  batch.x = Tensor(shape);
  batch.labels.resize(indices.size());
  const std::size_t stride = first.size();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto& e = d[indices[i]];
    if (e.x.size() != stride) {
      throw std::invalid_argument("make_batch: heterogeneous example shapes");
    }
    std::copy(e.x.data().begin(), e.x.data().end(),
              batch.x.data().begin() + static_cast<std::ptrdiff_t>(i * stride));
    batch.labels[i] = e.label;
  }
  return batch;
}

}  // namespace collapois::data
