// Synthetic stand-in for Sentiment140 behind a frozen BERT encoder (see
// DESIGN.md, substitutions).
//
// The paper freezes BERT and trains a small fully connected head; what the
// head sees is a class-clustered sentence embedding. We generate those
// embeddings directly: each class has a mean vector on a scaled sphere and
// samples are mean + isotropic Gaussian noise.
#pragma once

#include <cstddef>

#include "data/dataset.h"
#include "stats/rng.h"

namespace collapois::data {

struct SyntheticTextConfig {
  std::size_t embedding_dim = 32;
  std::size_t num_classes = 2;  // binary sentiment
  // Distance scale of the class means from the origin.
  double class_separation = 2.5;
  // Isotropic noise around the class mean.
  double noise_std = 1.0;
};

class SyntheticTextGenerator {
 public:
  SyntheticTextGenerator(SyntheticTextConfig config, std::uint64_t seed);

  const SyntheticTextConfig& config() const { return config_; }
  std::size_t num_classes() const { return config_.num_classes; }

  // Class mean embedding, shape [embedding_dim].
  const Tensor& class_mean(std::size_t label) const;

  // One sample of the given class, shape [embedding_dim].
  Example sample(int label, stats::Rng& rng) const;

  Dataset generate_class(int label, std::size_t count, stats::Rng& rng) const;

  Dataset generate(std::span<const std::size_t> class_counts,
                   stats::Rng& rng) const;

 private:
  SyntheticTextConfig config_;
  std::vector<Tensor> means_;
};

}  // namespace collapois::data
