#include "data/synthetic_text.h"

#include <cmath>
#include <stdexcept>

namespace collapois::data {

SyntheticTextGenerator::SyntheticTextGenerator(SyntheticTextConfig config,
                                               std::uint64_t seed)
    : config_(config) {
  if (config_.num_classes == 0 || config_.embedding_dim == 0) {
    throw std::invalid_argument("SyntheticTextGenerator: empty config");
  }
  stats::Rng rng(seed);
  means_.reserve(config_.num_classes);
  for (std::size_t cls = 0; cls < config_.num_classes; ++cls) {
    Tensor mean({config_.embedding_dim});
    double norm2 = 0.0;
    for (auto& v : mean.storage()) {
      v = static_cast<float>(rng.normal());
      norm2 += static_cast<double>(v) * v;
    }
    const double norm = std::sqrt(std::max(norm2, 1e-12));
    for (auto& v : mean.storage()) {
      v = static_cast<float>(v / norm * config_.class_separation);
    }
    means_.push_back(std::move(mean));
  }
}

const Tensor& SyntheticTextGenerator::class_mean(std::size_t label) const {
  return means_.at(label);
}

Example SyntheticTextGenerator::sample(int label, stats::Rng& rng) const {
  if (label < 0 ||
      static_cast<std::size_t>(label) >= config_.num_classes) {
    throw std::invalid_argument("SyntheticTextGenerator: label out of range");
  }
  Example e;
  e.label = label;
  e.x = means_[static_cast<std::size_t>(label)];
  for (auto& v : e.x.storage()) {
    v = static_cast<float>(v + rng.normal(0.0, config_.noise_std));
  }
  return e;
}

Dataset SyntheticTextGenerator::generate_class(int label, std::size_t count,
                                               stats::Rng& rng) const {
  Dataset d(config_.num_classes);
  d.reserve(count);
  for (std::size_t i = 0; i < count; ++i) d.add(sample(label, rng));
  return d;
}

Dataset SyntheticTextGenerator::generate(
    std::span<const std::size_t> class_counts, stats::Rng& rng) const {
  if (class_counts.size() != config_.num_classes) {
    throw std::invalid_argument(
        "SyntheticTextGenerator::generate: counts size mismatch");
  }
  Dataset d(config_.num_classes);
  for (std::size_t cls = 0; cls < class_counts.size(); ++cls) {
    for (std::size_t i = 0; i < class_counts[cls]; ++i) {
      d.add(sample(static_cast<int>(cls), rng));
    }
  }
  return d;
}

}  // namespace collapois::data
