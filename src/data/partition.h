// Non-IID federation of data across clients.
//
// The paper's non-IID model is label-distribution skew: the class
// proportions of each client's local data follow a symmetric Dirichlet
// Dir(alpha) (Section II-A). alpha > 1 gives dense, even class coverage;
// alpha < 1 concentrates each client on a few classes.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "stats/rng.h"

namespace collapois::data {

// Draw class proportions ~ Dir(alpha) and convert them to integer counts
// summing exactly to `total` (largest-remainder rounding).
std::vector<std::size_t> dirichlet_class_counts(stats::Rng& rng, double alpha,
                                                std::size_t num_classes,
                                                std::size_t total);

// Partition an existing dataset across `n_clients` by label skew: for each
// class, client shares are drawn ~ Dir(alpha) and the class's examples are
// dealt out accordingly. Every example is assigned to exactly one client.
std::vector<Dataset> partition_dirichlet(const Dataset& d,
                                         std::size_t n_clients, double alpha,
                                         stats::Rng& rng);

// A fully prepared federation: per-client train/test/validation splits.
struct FederatedData {
  std::size_t num_classes = 0;
  std::vector<ClientSplit> clients;

  std::size_t num_clients() const { return clients.size(); }

  // Per-client label histogram of the *full* local data (train+test+val),
  // used by the Eq. 9 proximity analysis.
  std::vector<std::vector<double>> client_label_histograms() const;
};

// Build a federation directly from a synthetic generator: each client
// draws its class mix ~ Dir(alpha), generates `samples_per_client`
// examples, and splits them 70/15/15. Works with both
// SyntheticImageGenerator and SyntheticTextGenerator.
template <typename Generator>
FederatedData build_federation(const Generator& gen, std::size_t n_clients,
                               std::size_t samples_per_client, double alpha,
                               stats::Rng& rng) {
  FederatedData fed;
  fed.num_classes = gen.num_classes();
  fed.clients.reserve(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) {
    const auto counts = dirichlet_class_counts(rng, alpha, gen.num_classes(),
                                               samples_per_client);
    Dataset local = gen.generate(counts, rng);
    fed.clients.push_back(split_client_data(local, rng));
  }
  return fed;
}

}  // namespace collapois::data
