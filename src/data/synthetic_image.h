// Synthetic stand-in for FEMNIST (see DESIGN.md, substitutions).
//
// Each class has a smooth random prototype image (a low-resolution random
// control grid bilinearly upsampled). A sample is the prototype with a
// small random spatial shift plus pixel noise, clamped to [0, 1]. This
// yields a learnable 10-way image classification task whose per-client
// label skew — the property the paper's analysis depends on — is imposed
// by the Dirichlet partitioner.
#pragma once

#include <cstddef>

#include "data/dataset.h"
#include "stats/rng.h"

namespace collapois::data {

struct SyntheticImageConfig {
  std::size_t height = 16;
  std::size_t width = 16;
  std::size_t num_classes = 10;
  // Control grid resolution for the smooth prototypes.
  std::size_t prototype_grid = 4;
  // Per-pixel Gaussian noise added to every sample.
  double noise_std = 0.20;
  // Maximum absolute spatial shift (pixels) applied per sample.
  int max_shift = 1;
};

class SyntheticImageGenerator {
 public:
  // Prototypes are drawn once from `seed`; sampling uses caller streams so
  // that the task (the prototypes) is fixed across clients.
  SyntheticImageGenerator(SyntheticImageConfig config, std::uint64_t seed);

  const SyntheticImageConfig& config() const { return config_; }
  std::size_t num_classes() const { return config_.num_classes; }

  // Prototype image of a class, shape [H, W].
  const Tensor& prototype(std::size_t label) const;

  // One sample of the given class, shape [1, H, W] (CHW with one channel).
  Example sample(int label, stats::Rng& rng) const;

  // `count` samples of class `label`.
  Dataset generate_class(int label, std::size_t count, stats::Rng& rng) const;

  // Dataset with the given per-class counts (size must be num_classes).
  Dataset generate(std::span<const std::size_t> class_counts,
                   stats::Rng& rng) const;

 private:
  SyntheticImageConfig config_;
  std::vector<Tensor> prototypes_;
};

}  // namespace collapois::data
