// Dataset containers and label-distribution utilities.
//
// A Dataset is an in-memory list of (tensor, label) examples with a fixed
// class count. Client-side splits (70/15/15 train/test/val, Section V) and
// the cumulative label distribution of Eq. 9 live here.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/rng.h"
#include "tensor/tensor.h"

namespace collapois::data {

using tensor::Tensor;

struct Example {
  Tensor x;
  int label = 0;
};

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t num_classes) : num_classes_(num_classes) {}

  std::size_t size() const { return examples_.size(); }
  bool empty() const { return examples_.empty(); }
  std::size_t num_classes() const { return num_classes_; }

  const Example& operator[](std::size_t i) const { return examples_.at(i); }
  Example& operator[](std::size_t i) { return examples_.at(i); }

  void add(Example e) { examples_.push_back(std::move(e)); }
  void reserve(std::size_t n) { examples_.reserve(n); }

  // Append every example of `other` (class counts must agree).
  void append(const Dataset& other);

  // Dataset restricted to the given indices.
  Dataset subset(std::span<const std::size_t> indices) const;

  // Count of examples per label, length num_classes().
  std::vector<double> label_histogram() const;

  // Cumulative label distribution P_CL (Eq. 9): prefix sums of the label
  // histogram, i.e. N_j = sum_{q <= j} N_q.
  std::vector<double> cumulative_label_distribution() const;

  auto begin() const { return examples_.begin(); }
  auto end() const { return examples_.end(); }

 private:
  std::size_t num_classes_ = 0;
  std::vector<Example> examples_;
};

// 70/15/15 train/test/validation split of one client's local data
// (shuffled with the provided rng). Small datasets degrade gracefully:
// every example lands in exactly one split and train is never empty when
// the input is non-empty.
struct ClientSplit {
  Dataset train;
  Dataset test;
  Dataset validation;
};

ClientSplit split_client_data(const Dataset& d, stats::Rng& rng,
                              double train_frac = 0.70,
                              double test_frac = 0.15);

// Assemble a mini-batch: stacks the examples at `indices` into one tensor
// whose first dimension is the batch, plus the label vector. All examples
// must share a shape.
struct Batch {
  Tensor x;
  std::vector<int> labels;
};

Batch make_batch(const Dataset& d, std::span<const std::size_t> indices);

}  // namespace collapois::data
