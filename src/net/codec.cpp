#include "net/codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "kernels/cpu_dispatch.h"
#include "net/codec_tiles.h"

namespace collapois::net {

namespace detail {

namespace {

// ---- scalar tier -------------------------------------------------------

void scalar_f32_to_f16(const float* src, std::uint16_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = half_from_float(src[i]);
}

void scalar_f16_to_f32(const std::uint16_t* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_from_half(src[i]);
}

void scalar_absmax_scan(const float* src, std::size_t n, float* max_abs,
                        bool* all_finite) {
  float m = 0.0f;
  std::uint32_t exp_and = 0;  // tracks whether any exponent is all-ones
  bool finite = true;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, src + i, sizeof(bits));
    exp_and = bits & 0x7f800000u;
    if (exp_and == 0x7f800000u) finite = false;
    float a = 0.0f;
    bits &= 0x7fffffffu;
    std::memcpy(&a, &bits, sizeof(a));
    // (m < a) ? a : m — the maxps lane semantics, NOT std::max, so the
    // SIMD tiers reduce to the identical value.
    m = (m < a) ? a : m;
  }
  *max_abs = m;
  *all_finite = finite;
}

void scalar_quantize_i8(const float* src, std::int8_t* dst, std::size_t n,
                        float inv_scale) {
  for (std::size_t i = 0; i < n; ++i) {
    // rne via nearbyintf (default rounding mode) == cvtps_epi32.
    int q = static_cast<int>(std::nearbyintf(src[i] * inv_scale));
    q = std::clamp(q, -127, 127);
    dst[i] = static_cast<std::int8_t>(q);
  }
}

void scalar_dequantize_i8(const std::int8_t* src, float* dst, std::size_t n,
                          float scale) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<float>(src[i]) * scale;
  }
}

void scalar_abs_values(const float* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, src + i, sizeof(bits));
    bits &= 0x7fffffffu;
    std::memcpy(dst + i, &bits, sizeof(bits));
  }
}

void scalar_scatter_add(const std::uint32_t* idx, const float* val,
                        std::size_t k, float* dst) {
  for (std::size_t i = 0; i < k; ++i) dst[idx[i]] += val[i];
}

// ---- sse2 tier ---------------------------------------------------------
//
// The integer half<->float construction above, four lanes at a time, with
// compare masks in place of the branches; remainders go through the
// scalar elementwise helpers, so the output is bitwise identical to the
// scalar tier.

#if defined(__SSE2__)

void sse2_f32_to_f16(const float* src, std::uint16_t* dst, std::size_t n) {
  const __m128i abs_mask = _mm_set1_epi32(0x7fffffff);
  const __m128i f32_infty = _mm_set1_epi32(255 << 23);
  const __m128i f16_max = _mm_set1_epi32((127 + 16) << 23);
  const __m128i denorm_cut = _mm_set1_epi32(113 << 23);
  const __m128 denorm_magic = _mm_set1_ps(0.5f);
  const __m128i denorm_magic_bits = _mm_set1_epi32(0x3f000000);
  const __m128i exp_rebias = _mm_set1_epi32(
      static_cast<int>((static_cast<std::uint32_t>(15 - 127) << 23) + 0xfff));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i f =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i sign16 =
        _mm_and_si128(_mm_srli_epi32(f, 16), _mm_set1_epi32(0x8000));
    const __m128i a = _mm_and_si128(f, abs_mask);

    // Special lanes (integer compares are signed, but every operand here
    // has the sign bit clear, so the order is the unsigned order).
    const __m128i is_naninf = _mm_cmpgt_epi32(a, _mm_sub_epi32(f32_infty,
                                                               _mm_set1_epi32(1)));
    const __m128i is_nan = _mm_cmpgt_epi32(a, f32_infty);
    const __m128i is_overflow =
        _mm_cmpgt_epi32(a, _mm_sub_epi32(f16_max, _mm_set1_epi32(1)));
    const __m128i is_denorm = _mm_cmplt_epi32(a, denorm_cut);

    // Subnormal path: one RNE float add, then strip the magic bits.
    const __m128 dn =
        _mm_add_ps(_mm_castsi128_ps(a), denorm_magic);
    const __m128i dn_bits =
        _mm_sub_epi32(_mm_castps_si128(dn), denorm_magic_bits);

    // Normal path: rebias + round-to-nearest-even via the odd-mantissa
    // increment.
    const __m128i mant_odd =
        _mm_and_si128(_mm_srli_epi32(a, 13), _mm_set1_epi32(1));
    const __m128i nm =
        _mm_srli_epi32(_mm_add_epi32(_mm_add_epi32(a, exp_rebias), mant_odd),
                       13);

    const __m128i naninf_val = _mm_or_si128(
        _mm_and_si128(is_nan, _mm_set1_epi32(0x7e00)),
        _mm_andnot_si128(is_nan, _mm_set1_epi32(0x7c00)));

    __m128i h = _mm_or_si128(_mm_and_si128(is_denorm, dn_bits),
                             _mm_andnot_si128(is_denorm, nm));
    h = _mm_or_si128(_mm_and_si128(is_overflow, _mm_set1_epi32(0x7c00)),
                     _mm_andnot_si128(is_overflow, h));
    h = _mm_or_si128(_mm_and_si128(is_naninf, naninf_val),
                     _mm_andnot_si128(is_naninf, h));
    h = _mm_or_si128(h, sign16);

    // Four u32 lanes -> four u16s. packs_epi32 saturates SIGNED, and a
    // negative half has lane value >= 0x8000, so bias the lanes down into
    // int16 range, pack, and undo the bias in 16-bit space.
    const __m128i biased = _mm_sub_epi32(h, _mm_set1_epi32(0x8000));
    const __m128i packed = _mm_xor_si128(
        _mm_packs_epi32(biased, biased),
        _mm_set1_epi16(static_cast<short>(0x8000)));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i), packed);
  }
  for (; i < n; ++i) dst[i] = half_from_float(src[i]);
}

void sse2_f16_to_f32(const std::uint16_t* src, float* dst, std::size_t n) {
  const __m128i shifted_exp = _mm_set1_epi32(0x7c00 << 13);
  const __m128i exp_adjust = _mm_set1_epi32((127 - 15) << 23);
  const __m128i naninf_adjust = _mm_set1_epi32((128 - 16) << 23);
  const __m128 denorm_magic = _mm_castsi128_ps(_mm_set1_epi32(113 << 23));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i h16 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i));
    const __m128i h = _mm_unpacklo_epi16(h16, _mm_setzero_si128());
    const __m128i mag =
        _mm_slli_epi32(_mm_and_si128(h, _mm_set1_epi32(0x7fff)), 13);
    const __m128i exp = _mm_and_si128(mag, shifted_exp);
    __m128i o = _mm_add_epi32(mag, exp_adjust);

    const __m128i is_naninf = _mm_cmpeq_epi32(exp, shifted_exp);
    const __m128i is_denorm = _mm_cmpeq_epi32(exp, _mm_setzero_si128());

    o = _mm_add_epi32(o, _mm_and_si128(is_naninf, naninf_adjust));
    const __m128i dn_bits = _mm_add_epi32(o, _mm_set1_epi32(1 << 23));
    const __m128 dn =
        _mm_sub_ps(_mm_castsi128_ps(dn_bits), denorm_magic);
    o = _mm_or_si128(_mm_and_si128(is_denorm, _mm_castps_si128(dn)),
                     _mm_andnot_si128(is_denorm, o));
    const __m128i sign =
        _mm_slli_epi32(_mm_and_si128(h, _mm_set1_epi32(0x8000)), 16);
    o = _mm_or_si128(o, sign);
    _mm_storeu_ps(dst + i, _mm_castsi128_ps(o));
  }
  for (; i < n; ++i) dst[i] = float_from_half(src[i]);
}

void sse2_absmax_scan(const float* src, std::size_t n, float* max_abs,
                      bool* all_finite) {
  const __m128i abs_mask = _mm_set1_epi32(0x7fffffff);
  const __m128i exp_mask = _mm_set1_epi32(0x7f800000);
  __m128 m = _mm_setzero_ps();
  __m128i nonfinite = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i bits =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    nonfinite = _mm_or_si128(
        nonfinite, _mm_cmpeq_epi32(_mm_and_si128(bits, exp_mask), exp_mask));
    m = _mm_max_ps(m, _mm_castsi128_ps(_mm_and_si128(bits, abs_mask)));
  }
  // Horizontal max over the four lanes (order-free for non-NaN values).
  alignas(16) float lanes[4];
  _mm_store_ps(lanes, m);
  float mm = lanes[0];
  mm = (mm < lanes[1]) ? lanes[1] : mm;
  mm = (mm < lanes[2]) ? lanes[2] : mm;
  mm = (mm < lanes[3]) ? lanes[3] : mm;
  bool finite = _mm_movemask_epi8(nonfinite) == 0;
  float tail_max = 0.0f;
  bool tail_finite = true;
  scalar_absmax_scan(src + i, n - i, &tail_max, &tail_finite);
  mm = (mm < tail_max) ? tail_max : mm;
  *max_abs = mm;
  *all_finite = finite && tail_finite;
}

void sse2_quantize_i8(const float* src, std::int8_t* dst, std::size_t n,
                      float inv_scale) {
  const __m128 vs = _mm_set1_ps(inv_scale);
  const __m128i lo = _mm_set1_epi32(-127);
  const __m128i hi = _mm_set1_epi32(127);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // cvtps_epi32 rounds to nearest even under the default MXCSR mode —
    // the same rne as the scalar nearbyintf path.
    __m128i q = _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i), vs));
    // Integer clamp without pminsd/pmaxsd (SSE4.1): blend via masks.
    const __m128i gt = _mm_cmpgt_epi32(q, hi);
    q = _mm_or_si128(_mm_and_si128(gt, hi), _mm_andnot_si128(gt, q));
    const __m128i lt = _mm_cmplt_epi32(q, lo);
    q = _mm_or_si128(_mm_and_si128(lt, lo), _mm_andnot_si128(lt, q));
    alignas(16) std::int32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), q);
    dst[i + 0] = static_cast<std::int8_t>(lanes[0]);
    dst[i + 1] = static_cast<std::int8_t>(lanes[1]);
    dst[i + 2] = static_cast<std::int8_t>(lanes[2]);
    dst[i + 3] = static_cast<std::int8_t>(lanes[3]);
  }
  scalar_quantize_i8(src + i, dst + i, n - i, inv_scale);
}

void sse2_dequantize_i8(const std::int8_t* src, float* dst, std::size_t n,
                        float scale) {
  const __m128 vs = _mm_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Sign-extend four int8s to int32 lanes, convert, scale.
    __m128i b = _mm_cvtsi32_si128(0);
    std::int32_t word = 0;
    std::memcpy(&word, src + i, sizeof(word));
    b = _mm_cvtsi32_si128(word);
    b = _mm_unpacklo_epi8(b, b);
    b = _mm_unpacklo_epi16(b, b);
    b = _mm_srai_epi32(b, 24);
    _mm_storeu_ps(dst + i, _mm_mul_ps(_mm_cvtepi32_ps(b), vs));
  }
  scalar_dequantize_i8(src + i, dst + i, n - i, scale);
}

void sse2_abs_values(const float* src, float* dst, std::size_t n) {
  const __m128i abs_mask = _mm_set1_epi32(0x7fffffff);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i bits =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_and_si128(bits, abs_mask));
  }
  scalar_abs_values(src + i, dst + i, n - i);
}

#endif  // __SSE2__

}  // namespace

const CodecOps kScalarCodecOps{
    scalar_f32_to_f16,   scalar_f16_to_f32,   scalar_absmax_scan,
    scalar_quantize_i8,  scalar_dequantize_i8, scalar_abs_values,
    scalar_scatter_add,
};

#if defined(__SSE2__)
const CodecOps kSse2CodecOps{
    sse2_f32_to_f16,   sse2_f16_to_f32,   sse2_absmax_scan,
    sse2_quantize_i8,  sse2_dequantize_i8, sse2_abs_values,
    scalar_scatter_add,
};
#endif

const CodecOps& codec_ops() {
  switch (kernels::active_tier()) {
#if defined(__SSE2__)
    case kernels::IsaTier::sse2:
      return kSse2CodecOps;
#endif
    case kernels::IsaTier::avx2:
      if (avx2_codec_compiled()) return avx2_codec_ops();
      break;
    default:
      break;
  }
  return kScalarCodecOps;
}

}  // namespace detail

// ---- codec config ------------------------------------------------------

const char* codec_kind_name(CodecKind kind) {
  switch (kind) {
    case CodecKind::identity: return "identity";
    case CodecKind::fp16: return "fp16";
    case CodecKind::int8: return "int8";
    case CodecKind::topk: return "topk";
  }
  return "unknown";
}

CodecKind parse_codec_kind(const std::string& name) {
  if (name == "identity") return CodecKind::identity;
  if (name == "fp16") return CodecKind::fp16;
  if (name == "int8") return CodecKind::int8;
  if (name == "topk") return CodecKind::topk;
  throw std::invalid_argument("unknown codec '" + name +
                              "' (expected identity | fp16 | int8 | topk)");
}

void validate_codec(const CodecConfig& config) {
  switch (config.kind) {
    case CodecKind::identity:
    case CodecKind::fp16:
      break;
    case CodecKind::int8:
      if (config.bits != 8) {
        throw std::invalid_argument(
            "CodecConfig: only 8-bit quantization is supported "
            "(--codec-bits 8)");
      }
      break;
    case CodecKind::topk:
      if (!std::isfinite(config.topk_fraction) || config.topk_fraction <= 0.0 ||
          config.topk_fraction > 1.0) {
        throw std::invalid_argument(
            "CodecConfig: topk_fraction must be in (0, 1]");
      }
      break;
  }
}

bool codec_is_lossy(CodecKind kind) { return kind != CodecKind::identity; }

std::uint32_t codec_capability_all() {
  return (1u << static_cast<std::uint32_t>(CodecKind::identity)) |
         (1u << static_cast<std::uint32_t>(CodecKind::fp16)) |
         (1u << static_cast<std::uint32_t>(CodecKind::int8)) |
         (1u << static_cast<std::uint32_t>(CodecKind::topk));
}

CodecConfig negotiate_codec(const CodecConfig& server_offer,
                            std::uint32_t client_capabilities) {
  const std::uint32_t bit = 1u
                            << static_cast<std::uint32_t>(server_offer.kind);
  if ((client_capabilities & bit) != 0) return server_offer;
  // Identity is the raw wire format — every client speaks it.
  CodecConfig fallback = server_offer;
  fallback.kind = CodecKind::identity;
  return fallback;
}

std::uint16_t codec_float_to_half(float x) {
  return detail::half_from_float(x);
}

float codec_half_to_float(std::uint16_t h) {
  return detail::float_from_half(h);
}

// ---- encode / decode ---------------------------------------------------

namespace {

// LEB128-style varint over the index gaps of the topk codec: benign
// 10%-density updates average ~1 byte per kept index vs 4 raw.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(const std::vector<std::uint8_t>& in,
                         std::size_t& pos) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (true) {
    if (pos >= in.size() || shift > 63) {
      throw std::runtime_error("codec: malformed varint in topk index blob");
    }
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

// The poison marker: a lossy encoder that sees a non-finite element
// writes (n, all_finite=false) and nothing else; the decoder returns n
// NaNs so the server's finiteness check rejects the update exactly like
// the fp32 original.
tensor::FlatVec poisoned_delta(std::size_t n) {
  return tensor::FlatVec(n, std::numeric_limits<float>::quiet_NaN());
}

void encode_fp16(fl::StateWriter& w, std::span<const float> delta,
                 const detail::CodecOps& ops) {
  const std::size_t n = delta.size();
  w.write_size(n);
  float max_abs = 0.0f;
  bool all_finite = true;
  ops.absmax_scan(delta.data(), n, &max_abs, &all_finite);
  w.write_bool(all_finite);
  if (!all_finite) return;
  std::vector<std::uint16_t> half(n);
  ops.f32_to_f16(delta.data(), half.data(), n);
  std::vector<std::uint8_t> blob(2 * n);
  std::memcpy(blob.data(), half.data(), blob.size());
  w.write_bytes(blob);
}

tensor::FlatVec decode_fp16(fl::StateReader& r, const detail::CodecOps& ops) {
  const std::size_t n = r.read_size();
  if (!r.read_bool()) return poisoned_delta(n);
  const std::vector<std::uint8_t> blob = r.read_bytes();
  if (blob.size() != 2 * n) {
    throw std::runtime_error("codec: fp16 blob size mismatch");
  }
  std::vector<std::uint16_t> half(n);
  std::memcpy(half.data(), blob.data(), blob.size());
  tensor::FlatVec out(n);
  ops.f16_to_f32(half.data(), out.data(), n);
  return out;
}

void encode_int8(fl::StateWriter& w, std::span<const float> delta,
                 const detail::CodecOps& ops) {
  const std::size_t n = delta.size();
  w.write_size(n);
  float max_abs = 0.0f;
  bool all_finite = true;
  ops.absmax_scan(delta.data(), n, &max_abs, &all_finite);
  w.write_bool(all_finite);
  if (!all_finite) return;
  const float scale = max_abs > 0.0f ? max_abs / 127.0f : 0.0f;
  const float inv_scale = scale > 0.0f ? 127.0f / max_abs : 0.0f;
  std::uint32_t scale_bits = 0;
  std::memcpy(&scale_bits, &scale, sizeof(scale_bits));
  w.write_u64(scale_bits);
  std::vector<std::uint8_t> blob(n);
  ops.quantize_i8(delta.data(), reinterpret_cast<std::int8_t*>(blob.data()),
                  n, inv_scale);
  w.write_bytes(blob);
}

tensor::FlatVec decode_int8(fl::StateReader& r, const detail::CodecOps& ops) {
  const std::size_t n = r.read_size();
  if (!r.read_bool()) return poisoned_delta(n);
  const std::uint64_t scale_u64 = r.read_u64();
  if (scale_u64 > 0xffffffffULL) {
    throw std::runtime_error("codec: int8 scale field out of range");
  }
  const std::uint32_t scale_bits = static_cast<std::uint32_t>(scale_u64);
  float scale = 0.0f;
  std::memcpy(&scale, &scale_bits, sizeof(scale));
  if (!std::isfinite(scale) || scale < 0.0f) {
    throw std::runtime_error("codec: int8 scale is not a valid magnitude");
  }
  const std::vector<std::uint8_t> blob = r.read_bytes();
  if (blob.size() != n) {
    throw std::runtime_error("codec: int8 blob size mismatch");
  }
  tensor::FlatVec out(n);
  ops.dequantize_i8(reinterpret_cast<const std::int8_t*>(blob.data()),
                    out.data(), n, scale);
  return out;
}

void encode_topk(fl::StateWriter& w, std::span<const float> delta,
                 const CodecConfig& config, const detail::CodecOps& ops) {
  const std::size_t n = delta.size();
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::runtime_error("codec: topk delta dimension exceeds u32 range");
  }
  w.write_size(n);
  float max_abs = 0.0f;
  bool all_finite = true;
  ops.absmax_scan(delta.data(), n, &max_abs, &all_finite);
  w.write_bool(all_finite);
  if (!all_finite) return;
  const std::size_t k =
      n == 0 ? 0
             : std::min<std::size_t>(
                   n, std::max<std::size_t>(
                          1, static_cast<std::size_t>(std::ceil(
                                 config.topk_fraction *
                                 static_cast<double>(n)))));
  w.write_size(k);
  std::vector<std::uint32_t> idx;
  idx.reserve(k);
  if (k == n) {
    for (std::size_t i = 0; i < n; ++i) {
      idx.push_back(static_cast<std::uint32_t>(i));
    }
  } else if (k > 0) {
    std::vector<float> mags(n);
    ops.abs_values(delta.data(), mags.data(), n);
    std::vector<float> order = mags;
    // The (n-k)-th smallest |x| is the k-th largest: the kept-set
    // threshold T.
    std::nth_element(order.begin(), order.begin() + (n - k), order.end());
    const float threshold = order[n - k];
    // Deterministic tie-break: every |x| > T is kept; the remaining slots
    // go to |x| == T in ascending index order. The selection is a pure
    // function of the values, identical on every tier.
    for (std::size_t i = 0; i < n && idx.size() < k; ++i) {
      if (mags[i] > threshold) idx.push_back(static_cast<std::uint32_t>(i));
    }
    std::size_t kept_above = idx.size();
    for (std::size_t i = 0; i < n && idx.size() < k; ++i) {
      if (mags[i] == threshold) idx.push_back(static_cast<std::uint32_t>(i));
    }
    std::sort(idx.begin(), idx.end());
    (void)kept_above;
  }
  std::vector<std::uint8_t> index_blob;
  index_blob.reserve(k + 8);
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    // First index absolute; later ones as (gap - 1), gaps >= 1 because
    // the sorted indices are unique.
    const std::uint64_t gap = i == 0 ? idx[0] : (idx[i] - prev - 1);
    put_varint(index_blob, gap);
    prev = idx[i];
  }
  w.write_bytes(index_blob);
  std::vector<float> kept(k);
  for (std::size_t i = 0; i < k; ++i) kept[i] = delta[idx[i]];
  std::vector<std::uint16_t> half(k);
  ops.f32_to_f16(kept.data(), half.data(), k);
  std::vector<std::uint8_t> value_blob(2 * k);
  std::memcpy(value_blob.data(), half.data(), value_blob.size());
  w.write_bytes(value_blob);
}

tensor::FlatVec decode_topk(fl::StateReader& r, const detail::CodecOps& ops) {
  const std::size_t n = r.read_size();
  if (!r.read_bool()) return poisoned_delta(n);
  const std::size_t k = r.read_size();
  if (k > n) throw std::runtime_error("codec: topk k exceeds dimension");
  const std::vector<std::uint8_t> index_blob = r.read_bytes();
  std::vector<std::uint32_t> idx(k);
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t gap = get_varint(index_blob, pos);
    const std::uint64_t v = i == 0 ? gap : prev + 1 + gap;
    if (v >= n) throw std::runtime_error("codec: topk index out of range");
    idx[i] = static_cast<std::uint32_t>(v);
    prev = v;
  }
  if (pos != index_blob.size()) {
    throw std::runtime_error("codec: trailing bytes in topk index blob");
  }
  const std::vector<std::uint8_t> value_blob = r.read_bytes();
  if (value_blob.size() != 2 * k) {
    throw std::runtime_error("codec: topk value blob size mismatch");
  }
  std::vector<std::uint16_t> half(k);
  std::memcpy(half.data(), value_blob.data(), value_blob.size());
  std::vector<float> vals(k);
  ops.f16_to_f32(half.data(), vals.data(), k);
  tensor::FlatVec out(n, 0.0f);
  // Indices are unique, so the scatter-ADD into the zero vector is an
  // assignment — the op is additive so sparse deltas could also be
  // accumulated straight into fl::UpdateMatrix rows.
  ops.scatter_add(idx.data(), vals.data(), k, out.data());
  return out;
}

}  // namespace

void encode_delta(fl::StateWriter& w, std::span<const float> delta,
                  const CodecConfig& config) {
  const detail::CodecOps& ops = detail::codec_ops();
  switch (config.kind) {
    case CodecKind::identity:
      w.write_floats(delta);
      return;
    case CodecKind::fp16:
      encode_fp16(w, delta, ops);
      return;
    case CodecKind::int8:
      encode_int8(w, delta, ops);
      return;
    case CodecKind::topk:
      encode_topk(w, delta, config, ops);
      return;
  }
  throw std::logic_error("encode_delta: unhandled codec kind");
}

tensor::FlatVec decode_delta(fl::StateReader& r, const CodecConfig& config) {
  const detail::CodecOps& ops = detail::codec_ops();
  switch (config.kind) {
    case CodecKind::identity:
      return r.read_floats();
    case CodecKind::fp16:
      return decode_fp16(r, ops);
    case CodecKind::int8:
      return decode_int8(r, ops);
    case CodecKind::topk:
      return decode_topk(r, ops);
  }
  throw std::logic_error("decode_delta: unhandled codec kind");
}

}  // namespace collapois::net
