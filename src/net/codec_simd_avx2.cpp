// The avx2 codec tier: the integer half<->float construction and the
// quantize/absmax scans of codec.cpp, eight lanes at a time. This is the
// only TU in src/net built with -mavx2 -mfma (see net/CMakeLists.txt);
// the cpuid dispatcher guarantees these functions are only CALLED on
// CPUs that execute them, and codec_ops() additionally gates on
// avx2_codec_compiled() so non-x86 builds fall back cleanly.
//
// Unlike the GEMM avx2 tier (last-ulp FMA differences, tolerance
// contract), every op here is BIT-IDENTICAL to the scalar tier: the
// conversions are pure integer manipulation, absmax is an order-free max
// over sign-cleared lanes, and quantize uses cvtps round-to-nearest-even
// with a single multiply — no FMA contraction anywhere on these paths
// (scatter_add stays on the shared scalar body). Remainders route
// through the scalar elementwise helpers in codec_tiles.h. The encoded
// payload bytes therefore never depend on the host CPU (DESIGN.md §15).
//
// On non-x86 targets (or builds where the compiler cannot target AVX2)
// this TU compiles to a stub: avx2_codec_compiled() returns false and
// codec_ops() never dereferences the table.
#include "net/codec_tiles.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

namespace collapois::net::detail {

namespace {

void avx2_f32_to_f16(const float* src, std::uint16_t* dst, std::size_t n) {
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);
  const __m256i f32_infty = _mm256_set1_epi32(255 << 23);
  const __m256i f16_max = _mm256_set1_epi32((127 + 16) << 23);
  const __m256i denorm_cut = _mm256_set1_epi32(113 << 23);
  const __m256 denorm_magic = _mm256_set1_ps(0.5f);
  const __m256i denorm_magic_bits = _mm256_set1_epi32(0x3f000000);
  const __m256i exp_rebias = _mm256_set1_epi32(
      static_cast<int>((static_cast<std::uint32_t>(15 - 127) << 23) + 0xfff));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i f =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i sign16 =
        _mm256_and_si256(_mm256_srli_epi32(f, 16), _mm256_set1_epi32(0x8000));
    const __m256i a = _mm256_and_si256(f, abs_mask);

    // Special lanes (signed compares, but every operand has the sign bit
    // clear, so the order is the unsigned order).
    const __m256i is_naninf = _mm256_cmpgt_epi32(
        a, _mm256_sub_epi32(f32_infty, _mm256_set1_epi32(1)));
    const __m256i is_nan = _mm256_cmpgt_epi32(a, f32_infty);
    const __m256i is_overflow =
        _mm256_cmpgt_epi32(a, _mm256_sub_epi32(f16_max, _mm256_set1_epi32(1)));
    const __m256i is_denorm = _mm256_cmpgt_epi32(denorm_cut, a);

    // Subnormal path: one RNE float add, then strip the magic bits.
    const __m256 dn = _mm256_add_ps(_mm256_castsi256_ps(a), denorm_magic);
    const __m256i dn_bits =
        _mm256_sub_epi32(_mm256_castps_si256(dn), denorm_magic_bits);

    // Normal path: rebias + round-to-nearest-even via the odd-mantissa
    // increment.
    const __m256i mant_odd =
        _mm256_and_si256(_mm256_srli_epi32(a, 13), _mm256_set1_epi32(1));
    const __m256i nm = _mm256_srli_epi32(
        _mm256_add_epi32(_mm256_add_epi32(a, exp_rebias), mant_odd), 13);

    const __m256i naninf_val =
        _mm256_blendv_epi8(_mm256_set1_epi32(0x7c00),
                           _mm256_set1_epi32(0x7e00), is_nan);

    __m256i h = _mm256_blendv_epi8(nm, dn_bits, is_denorm);
    h = _mm256_blendv_epi8(h, _mm256_set1_epi32(0x7c00), is_overflow);
    h = _mm256_blendv_epi8(h, naninf_val, is_naninf);
    h = _mm256_or_si256(h, sign16);

    // Eight u32 lanes -> eight u16s: packus within 128-bit lanes (values
    // fit unsigned 16 bits, so unsigned saturation never fires), then
    // gather the two distinct qwords.
    const __m256i packed = _mm256_packus_epi32(h, h);
    const __m256i ordered =
        _mm256_permute4x64_epi64(packed, _MM_SHUFFLE(3, 1, 2, 0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm256_castsi256_si128(ordered));
  }
  for (; i < n; ++i) dst[i] = half_from_float(src[i]);
}

void avx2_f16_to_f32(const std::uint16_t* src, float* dst, std::size_t n) {
  const __m256i shifted_exp = _mm256_set1_epi32(0x7c00 << 13);
  const __m256i exp_adjust = _mm256_set1_epi32((127 - 15) << 23);
  const __m256i naninf_adjust = _mm256_set1_epi32((128 - 16) << 23);
  const __m256 denorm_magic = _mm256_castsi256_ps(_mm256_set1_epi32(113 << 23));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m256i h = _mm256_cvtepu16_epi32(h16);
    const __m256i mag =
        _mm256_slli_epi32(_mm256_and_si256(h, _mm256_set1_epi32(0x7fff)), 13);
    const __m256i exp = _mm256_and_si256(mag, shifted_exp);
    __m256i o = _mm256_add_epi32(mag, exp_adjust);

    const __m256i is_naninf = _mm256_cmpeq_epi32(exp, shifted_exp);
    const __m256i is_denorm = _mm256_cmpeq_epi32(exp, _mm256_setzero_si256());

    o = _mm256_add_epi32(o, _mm256_and_si256(is_naninf, naninf_adjust));
    const __m256i dn_bits = _mm256_add_epi32(o, _mm256_set1_epi32(1 << 23));
    const __m256 dn = _mm256_sub_ps(_mm256_castsi256_ps(dn_bits), denorm_magic);
    o = _mm256_blendv_epi8(o, _mm256_castps_si256(dn), is_denorm);
    const __m256i sign =
        _mm256_slli_epi32(_mm256_and_si256(h, _mm256_set1_epi32(0x8000)), 16);
    o = _mm256_or_si256(o, sign);
    _mm256_storeu_ps(dst + i, _mm256_castsi256_ps(o));
  }
  for (; i < n; ++i) dst[i] = float_from_half(src[i]);
}

void avx2_absmax_scan(const float* src, std::size_t n, float* max_abs,
                      bool* all_finite) {
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);
  const __m256i exp_mask = _mm256_set1_epi32(0x7f800000);
  __m256 m = _mm256_setzero_ps();
  __m256i nonfinite = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i bits =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    nonfinite = _mm256_or_si256(
        nonfinite,
        _mm256_cmpeq_epi32(_mm256_and_si256(bits, exp_mask), exp_mask));
    m = _mm256_max_ps(m, _mm256_castsi256_ps(_mm256_and_si256(bits, abs_mask)));
  }
  // Horizontal max over the eight lanes (order-free for non-NaN values;
  // when any lane is non-finite the result is unspecified by contract).
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, m);
  float mm = lanes[0];
  for (int l = 1; l < 8; ++l) mm = (mm < lanes[l]) ? lanes[l] : mm;
  bool finite = _mm256_movemask_epi8(nonfinite) == 0;
  float tail_max = 0.0f;
  bool tail_finite = true;
  for (std::size_t j = i; j < n; ++j) {
    std::uint32_t b = 0;
    std::memcpy(&b, src + j, sizeof(b));
    if ((b & 0x7f800000u) == 0x7f800000u) tail_finite = false;
    b &= 0x7fffffffu;
    float a = 0.0f;
    std::memcpy(&a, &b, sizeof(a));
    tail_max = (tail_max < a) ? a : tail_max;
  }
  mm = (mm < tail_max) ? tail_max : mm;
  *max_abs = mm;
  *all_finite = finite && tail_finite;
}

void avx2_quantize_i8(const float* src, std::int8_t* dst, std::size_t n,
                      float inv_scale) {
  const __m256 vs = _mm256_set1_ps(inv_scale);
  const __m256i lo = _mm256_set1_epi32(-127);
  const __m256i hi = _mm256_set1_epi32(127);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // cvtps_epi32 rounds to nearest even under the default MXCSR mode;
    // the multiply stays a lone mulps so no FMA contraction can shift
    // the rounding vs the scalar tier.
    __m256i q = _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(src + i), vs));
    q = _mm256_min_epi32(_mm256_max_epi32(q, lo), hi);
    alignas(32) std::int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), q);
    for (int l = 0; l < 8; ++l) {
      dst[i + static_cast<std::size_t>(l)] = static_cast<std::int8_t>(lanes[l]);
    }
  }
  for (; i < n; ++i) {
    int q = static_cast<int>(std::nearbyintf(src[i] * inv_scale));
    q = q > 127 ? 127 : (q < -127 ? -127 : q);
    dst[i] = static_cast<std::int8_t>(q);
  }
}

void avx2_dequantize_i8(const std::int8_t* src, float* dst, std::size_t n,
                        float scale) {
  const __m256 vs = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i b =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i));
    const __m256i w = _mm256_cvtepi8_epi32(b);
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_cvtepi32_ps(w), vs));
  }
  for (; i < n; ++i) dst[i] = static_cast<float>(src[i]) * scale;
}

void avx2_abs_values(const float* src, float* dst, std::size_t n) {
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i bits =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(bits, abs_mask));
  }
  for (; i < n; ++i) {
    std::uint32_t b = 0;
    std::memcpy(&b, src + i, sizeof(b));
    b &= 0x7fffffffu;
    std::memcpy(dst + i, &b, sizeof(b));
  }
}

// scatter_add is inherently serial below AVX-512; run the scalar body so
// the table has a complete dispatch surface.
void avx2_scatter_add(const std::uint32_t* idx, const float* val,
                      std::size_t k, float* dst) {
  for (std::size_t i = 0; i < k; ++i) dst[idx[i]] += val[i];
}

const CodecOps kAvx2CodecOps{
    avx2_f32_to_f16,   avx2_f16_to_f32,   avx2_absmax_scan,
    avx2_quantize_i8,  avx2_dequantize_i8, avx2_abs_values,
    avx2_scatter_add,
};

}  // namespace

bool avx2_codec_compiled() { return true; }

const CodecOps& avx2_codec_ops() { return kAvx2CodecOps; }

}  // namespace collapois::net::detail

#else  // !__AVX2__

namespace collapois::net::detail {

bool avx2_codec_compiled() { return false; }

// Never called: codec_ops() checks avx2_codec_compiled() first. The
// scalar table keeps the symbol defined on every target.
const CodecOps& avx2_codec_ops() { return kScalarCodecOps; }

}  // namespace collapois::net::detail

#endif  // __AVX2__
