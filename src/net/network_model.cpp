#include "net/network_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace collapois::net {

namespace {

// Decision lanes for the counter-based draws; each (client, round,
// attempt) cell draws independently per lane.
constexpr std::uint64_t kLaneLoss = 1;
constexpr std::uint64_t kLaneLatency = 2;
constexpr std::uint64_t kLaneCorrupt = 3;
constexpr std::uint64_t kLaneCorruptKind = 4;
constexpr std::uint64_t kLaneDuplicate = 5;

std::uint64_t splitmix64_once(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t cell_hash(std::uint64_t seed, std::size_t client_id,
                        std::size_t round, std::size_t attempt,
                        std::uint64_t lane) {
  std::uint64_t h = splitmix64_once(seed ^ (0x9e3779b97f4a7c15ULL * lane));
  h = splitmix64_once(h ^ static_cast<std::uint64_t>(client_id));
  h = splitmix64_once(h ^ static_cast<std::uint64_t>(round));
  h = splitmix64_once(h ^ static_cast<std::uint64_t>(attempt));
  return h;
}

// Counter-based uniform in [0, 1) for the cell.
double cell_uniform(std::uint64_t seed, std::size_t client_id,
                    std::size_t round, std::size_t attempt,
                    std::uint64_t lane) {
  return static_cast<double>(
             cell_hash(seed, client_id, round, attempt, lane) >> 11) *
         0x1.0p-53;
}

// Damage an envelope the way the network would: flip one payload byte or
// truncate the payload, deterministically per cell. Used to exercise the
// receiver's checksum path with real damaged bytes.
Envelope damage_envelope(const Envelope& env, std::uint64_t kind_hash) {
  Envelope damaged = env;
  if (damaged.payload.empty()) {
    damaged.checksum ^= 0x1;  // nothing to damage but the header
    return damaged;
  }
  const std::size_t at =
      static_cast<std::size_t>(kind_hash >> 8) % damaged.payload.size();
  if ((kind_hash & 1) == 0) {
    damaged.payload[at] ^= 0xFF;
  } else {
    damaged.payload.resize(at);  // truncation, possibly to empty
  }
  return damaged;
}

}  // namespace

void TransportStats::accumulate(const TransportStats& other) {
  msgs_sent += other.msgs_sent;
  lost += other.lost;
  corrupted += other.corrupted;
  retried += other.retried;
  duplicated += other.duplicated;
  transport_dropped += other.transport_dropped;
  deadline_dropped += other.deadline_dropped;
  excess_dropped += other.excess_dropped;
  fp32_bytes_sent += other.fp32_bytes_sent;
  wire_bytes_sent += other.wire_bytes_sent;
  wire_bytes_received += other.wire_bytes_received;
  arrival_max_ms = std::max(arrival_max_ms, other.arrival_max_ms);
}

const char* delivery_status_name(DeliveryStatus status) {
  switch (status) {
    case DeliveryStatus::delivered: return "delivered";
    case DeliveryStatus::late: return "late";
    case DeliveryStatus::lost: return "lost";
  }
  return "unknown";
}

NetworkModel::NetworkModel(NetConfig config) : config_(config) {
  auto check_prob = [](double p, const char* name) {
    if (!std::isfinite(p) || p < 0.0 || p > 1.0) {
      throw std::invalid_argument(std::string("NetworkModel: ") + name +
                                  " must be a probability in [0, 1]");
    }
  };
  auto check_nonneg = [](double v, const char* name) {
    if (!std::isfinite(v) || v < 0.0) {
      throw std::invalid_argument(std::string("NetworkModel: ") + name +
                                  " must be finite and non-negative");
    }
  };
  check_prob(config_.loss_prob, "loss_prob");
  check_prob(config_.corrupt_prob, "corrupt_prob");
  check_prob(config_.duplicate_prob, "duplicate_prob");
  check_nonneg(config_.latency_min_ms, "latency_min_ms");
  check_nonneg(config_.latency_max_ms, "latency_max_ms");
  check_nonneg(config_.deadline_ms, "deadline_ms");
  check_nonneg(config_.backoff_base_ms, "backoff_base_ms");
  check_nonneg(config_.backoff_cap_ms, "backoff_cap_ms");
  if (config_.latency_min_ms > config_.latency_max_ms) {
    throw std::invalid_argument(
        "NetworkModel: latency_min_ms must not exceed latency_max_ms");
  }
  if (!std::isfinite(config_.over_sample) || config_.over_sample < 0.0 ||
      config_.over_sample > 16.0) {
    throw std::invalid_argument(
        "NetworkModel: over_sample must be in [0, 16]");
  }
}

double NetworkModel::backoff_ms(const NetConfig& config,
                                std::size_t failures) {
  // min(base * 2^failures, cap), saturating the shift well before the
  // double overflows.
  const double factor =
      failures >= 53 ? config.backoff_cap_ms
                     : config.backoff_base_ms *
                           static_cast<double>(std::uint64_t{1} << failures);
  return std::min(factor, config.backoff_cap_ms);
}

Delivery NetworkModel::transmit(std::size_t client_id, std::size_t round,
                                const Envelope& envelope,
                                TransportStats* stats) const {
  Delivery d;
  double send_time = 0.0;
  const bool has_deadline = config_.deadline_ms > 0.0;
  for (std::size_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (has_deadline && send_time > config_.deadline_ms) {
      // The backoff schedule walked past the round deadline: the client
      // gives up without sending again.
      d.status = DeliveryStatus::late;
      d.arrival_ms = send_time;
      return d;
    }
    ++d.attempts;
    ++stats->msgs_sent;
    stats->fp32_bytes_sent += envelope.fp32_bytes;
    stats->wire_bytes_sent += envelope.payload.size();
    if (attempt > 0) ++stats->retried;

    const double latency =
        config_.latency_min_ms +
        cell_uniform(config_.seed, client_id, round, attempt, kLaneLatency) *
            (config_.latency_max_ms - config_.latency_min_ms);
    const double arrival = send_time + latency;

    const bool lost = cell_uniform(config_.seed, client_id, round, attempt,
                                   kLaneLoss) < config_.loss_prob;
    bool rejected = false;
    if (lost) {
      ++stats->lost;
    } else if (cell_uniform(config_.seed, client_id, round, attempt,
                            kLaneCorrupt) < config_.corrupt_prob) {
      // Arrived damaged: materialize the damage and run it through the
      // receiver's checksum so the detection path is genuinely exercised.
      const Envelope damaged = damage_envelope(
          envelope, cell_hash(config_.seed, client_id, round, attempt,
                              kLaneCorruptKind));
      rejected = !decode_update(damaged).has_value();
      ++stats->corrupted;
    } else {
      // Intact arrival. Past the deadline the server has closed the
      // round and the message is discarded unread.
      if (has_deadline && arrival > config_.deadline_ms) {
        d.status = DeliveryStatus::late;
        d.arrival_ms = arrival;
        return d;
      }
      d.update = decode_update(envelope);
      if (!d.update.has_value()) {
        throw std::logic_error(
            "NetworkModel::transmit: clean envelope failed to decode "
            "(codec bug)");
      }
      d.status = DeliveryStatus::delivered;
      d.arrival_ms = arrival;
      stats->wire_bytes_received += envelope.payload.size();
      d.duplicated = cell_uniform(config_.seed, client_id, round, attempt,
                                  kLaneDuplicate) < config_.duplicate_prob;
      if (d.duplicated) ++stats->duplicated;
      return d;
    }
    (void)rejected;  // corrupt and lost retry identically from the sender
    d.arrival_ms = arrival;
    send_time += backoff_ms(config_, attempt);
  }
  d.status = DeliveryStatus::lost;
  return d;
}

void NetworkModel::accumulate_round(const TransportStats& round_stats) {
  totals_.accumulate(round_stats);
}

void NetworkModel::save_state(fl::StateWriter& w) const {
  w.write_size(totals_.msgs_sent);
  w.write_size(totals_.lost);
  w.write_size(totals_.corrupted);
  w.write_size(totals_.retried);
  w.write_size(totals_.duplicated);
  w.write_size(totals_.transport_dropped);
  w.write_size(totals_.deadline_dropped);
  w.write_size(totals_.excess_dropped);
  w.write_size(totals_.fp32_bytes_sent);
  w.write_size(totals_.wire_bytes_sent);
  w.write_size(totals_.wire_bytes_received);
  w.write_double(totals_.arrival_max_ms);
  // In-flight queue length. The round barrier drains every message before
  // a checkpoint can be taken, so this is structurally zero; the field
  // future-proofs the format for cross-round delivery.
  w.write_size(0);
}

void NetworkModel::load_state(fl::StateReader& r) {
  totals_ = TransportStats{};
  totals_.msgs_sent = r.read_size();
  totals_.lost = r.read_size();
  totals_.corrupted = r.read_size();
  totals_.retried = r.read_size();
  totals_.duplicated = r.read_size();
  totals_.transport_dropped = r.read_size();
  totals_.deadline_dropped = r.read_size();
  totals_.excess_dropped = r.read_size();
  totals_.fp32_bytes_sent = r.read_size();
  totals_.wire_bytes_sent = r.read_size();
  totals_.wire_bytes_received = r.read_size();
  totals_.arrival_max_ms = r.read_double();
  const std::size_t in_flight = r.read_size();
  if (in_flight != 0) {
    throw std::runtime_error(
        "NetworkModel::load_state: non-empty in-flight queue (checkpoint "
        "was not taken at a round barrier)");
  }
}

}  // namespace collapois::net
