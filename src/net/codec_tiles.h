// Internal: the update-codec layer's SIMD kernels, dispatched on the same
// runtime ISA tier as the GEMM microkernels and the defense column tiles
// (kernels/cpu_dispatch.h). Only codec.cpp and the tier TUs include this.
//
// Every op is elementwise or an order-free reduction, so all three tiers
// produce BIT-IDENTICAL results — stronger than the GEMM tiers' tolerance
// contract, and deliberately so: the encoded payload bytes feed the
// Envelope checksum, and a tier-dependent encoding would make the wire
// format a function of the host CPU. The guarantees, op by op:
//
//   f32_to_f16 / f16_to_f32 — branch-free integer IEEE-754 binary32 <->
//       binary16 conversion with round-to-nearest-even (the float add in
//       the subnormal path is RNE in scalar and in addps/vaddps alike).
//       No F16C instructions: the same bit manipulation runs on every
//       tier, so no extra cpuid lane is needed.
//   absmax_scan — max|x| (an associative, commutative reduction over
//       non-NaN values: lane-wise then horizontal max equals the
//       sequential scalar max bit-for-bit) plus an all-finite flag from
//       integer exponent tests. When all_finite is false, max_abs is
//       UNSPECIFIED — the encoders take the poison-marker path and never
//       read it.
//   quantize_i8 / dequantize_i8 — q = rne(x * inv_scale) clamped to
//       [-127, 127] (cvtps round-to-nearest-even == std::nearbyintf under
//       the default rounding mode; a single multiply, no FMA), and
//       x^ = (float)q * scale (exact int->float convert + one multiply).
//   abs_values — sign-bit clear.
//   scatter_add — dst[idx[i]] += val[i] with unique indices. Inherently
//       serial (no scatter below AVX-512); every tier runs the scalar
//       body, kept in the vtable so the decode path has a single
//       dispatch surface.
#pragma once

#include <cstdint>
#include <cstring>

namespace collapois::net::detail {

struct CodecOps {
  void (*f32_to_f16)(const float* src, std::uint16_t* dst, std::size_t n);
  void (*f16_to_f32)(const std::uint16_t* src, float* dst, std::size_t n);
  void (*absmax_scan)(const float* src, std::size_t n, float* max_abs,
                      bool* all_finite);
  void (*quantize_i8)(const float* src, std::int8_t* dst, std::size_t n,
                      float inv_scale);
  void (*dequantize_i8)(const std::int8_t* src, float* dst, std::size_t n,
                        float scale);
  void (*abs_values)(const float* src, float* dst, std::size_t n);
  void (*scatter_add)(const std::uint32_t* idx, const float* val,
                      std::size_t k, float* dst);
};

// The op set for kernels::active_tier().
const CodecOps& codec_ops();

// Tier tables (codec.cpp; avx2 in codec_simd_avx2.cpp, built with
// -mavx2 -mfma — stubbed to compiled()==false on other targets).
extern const CodecOps kScalarCodecOps;
#if defined(__SSE2__)
extern const CodecOps kSse2CodecOps;
#endif
bool avx2_codec_compiled();
const CodecOps& avx2_codec_ops();

// Scalar elementwise conversions, shared by every tier's remainder loop
// (SIMD body + this tail is bitwise identical to a pure scalar pass
// because each element converts independently).
//
// float -> half, round-to-nearest-even (the float_to_half_fast3_rtne
// construction): NaN -> 0x7e00 (quiet), overflow and inf -> 0x7c00,
// subnormal halves via one RNE float add against 0.5f whose mantissa
// bits land exactly where the half's mantissa lives.
inline std::uint16_t half_from_float(float x) {
  std::uint32_t f = 0;
  std::memcpy(&f, &x, sizeof(f));
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  f &= 0x7fffffffu;
  std::uint16_t h;
  if (f >= 0x7f800000u) {  // inf or NaN
    h = (f > 0x7f800000u) ? 0x7e00 : 0x7c00;
  } else if (f >= ((127u + 16u) << 23)) {  // rounds past the half range
    h = 0x7c00;
  } else if (f < (113u << 23)) {  // half subnormal or zero
    float magic = 0.5f;  // bits 0x3f000000 = 2^(-14) * 2^13, see above
    std::uint32_t magic_bits = 0;
    std::memcpy(&magic_bits, &magic, sizeof(magic_bits));
    float v = 0.0f;
    std::memcpy(&v, &f, sizeof(v));
    v += magic;  // RNE add aligns the 10 mantissa bits
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    h = static_cast<std::uint16_t>(bits - magic_bits);
  } else {
    const std::uint32_t mant_odd = (f >> 13) & 1u;
    f += (static_cast<std::uint32_t>(15 - 127) << 23) + 0xfffu;
    f += mant_odd;
    h = static_cast<std::uint16_t>(f >> 13);
  }
  return static_cast<std::uint16_t>(h | sign);
}

// half -> float: shift the exponent/mantissa field up, rebias, and fix
// the two special exponents (inf/NaN keep all-ones; subnormals
// renormalize through one exact float subtract).
inline float float_from_half(std::uint16_t h) {
  const std::uint32_t shifted_exp = 0x7c00u << 13;
  std::uint32_t o = static_cast<std::uint32_t>(h & 0x7fffu) << 13;
  const std::uint32_t exp = o & shifted_exp;
  o += (127u - 15u) << 23;
  if (exp == shifted_exp) {
    o += (128u - 16u) << 23;  // inf/NaN: re-set the exponent to all ones
  } else if (exp == 0) {
    o += 1u << 23;  // subnormal: renormalize
    float v = 0.0f;
    std::memcpy(&v, &o, sizeof(v));
    float magic = 0.0f;
    const std::uint32_t magic_bits = 113u << 23;
    std::memcpy(&magic, &magic_bits, sizeof(magic));
    v -= magic;
    std::memcpy(&o, &v, sizeof(o));
  }
  o |= static_cast<std::uint32_t>(h & 0x8000u) << 16;
  float out = 0.0f;
  std::memcpy(&out, &o, sizeof(out));
  return out;
}

}  // namespace collapois::net::detail
