// Simulated client->server transport: message-level faults, retry with
// capped exponential backoff, and a virtual-clock round deadline.
//
// Production FL systems are defined by their transport: over-selection,
// report deadlines, partial participation (Shejwalkar et al., "Back to
// the Drawing Board"; Bonawitz et al., "Towards Federated Learning at
// Scale"). This layer sits between Server::run_round and its clients and
// models exactly that — an update that was computed is no longer
// guaranteed to arrive, arrive once, or arrive on time:
//
//  - loss:        a send attempt vanishes in flight;
//  - corruption:  a send attempt arrives damaged (byte flip or
//                 truncation) and is rejected by the receiver's envelope
//                 checksum (net/envelope.h) — indistinguishable from loss
//                 to the sender, counted separately in telemetry;
//  - duplication: a delivered message also arrives a second time (the
//                 server de-duplicates by client id; the copy is counted);
//  - latency:     every attempt's arrival time is drawn uniformly from
//                 [latency_min_ms, latency_max_ms) on a VIRTUAL clock —
//                 simulated time, unrelated to wall-clock — which orders
//                 arrivals and decides deadline misses;
//  - retry:       a client that detects loss/corruption re-sends after a
//                 capped exponential backoff, up to max_retries re-sends;
//  - deadline:    with deadline_ms > 0 the server closes the round at
//                 that virtual time; an update whose delivery lands later
//                 (or whose sender's backoff schedule passes it) is a
//                 deadline dropout.
//
// Determinism: every decision — loss, corruption, duplication, latency —
// is COUNTER-BASED, a splitmix64 hash of (seed, client id, round, attempt,
// lane), exactly like fl::FaultModel. Decisions are pure functions of the
// tuple, independent of the order clients are processed in and of the
// thread count, so the RuntimeDeterminism guarantees extend unchanged.
// The only mutable state is the cumulative telemetry totals, which are
// serialized into checkpoints; the per-round message flow is fully
// drained at the round barrier, so the in-flight queue is empty at every
// checkpoint boundary (serialized as an explicit zero-length marker).
#pragma once

#include <cstdint>
#include <optional>

#include "fl/state.h"
#include "net/envelope.h"

namespace collapois::net {

struct NetConfig {
  // Master switch. Disabled (the default) bypasses the transport
  // entirely: run_round behaves exactly as before this layer existed.
  bool enabled = false;

  // Per-send-attempt fault probabilities.
  double loss_prob = 0.0;
  double corrupt_prob = 0.0;
  // Probability that a delivered message also arrives as a duplicate.
  double duplicate_prob = 0.0;

  // Uniform per-attempt delivery latency on the virtual clock, in ms.
  double latency_min_ms = 10.0;
  double latency_max_ms = 50.0;

  // Virtual-clock round deadline in ms; 0 disables (no deadline).
  double deadline_ms = 0.0;

  // Retry budget: the client sends at most 1 + max_retries attempts.
  std::size_t max_retries = 3;
  // Backoff before re-send attempt a (0-based failure count):
  // min(backoff_base_ms * 2^a, backoff_cap_ms).
  double backoff_base_ms = 20.0;
  double backoff_cap_ms = 160.0;

  // Over-provisioned sampling (production over-selection): the server
  // samples ceil((1 + over_sample) * k) clients for a target cohort of k
  // and aggregates the first k arrivals; later arrivals are discarded as
  // excess.
  double over_sample = 0.0;

  // Stream selector for the counter-based decisions.
  std::uint64_t seed = 0x7e1e40a37ULL;
};

// Per-round transport counters (also accumulated across rounds as the
// NetworkModel's checkpointed totals). "sampled == accepted + dropped +
// rejected" stays an invariant of RoundTelemetry; these counters describe
// the message flow underneath it.
struct TransportStats {
  std::size_t msgs_sent = 0;   // every send attempt, retries included
  std::size_t lost = 0;        // attempts that vanished in flight
  std::size_t corrupted = 0;   // attempts rejected by the checksum
  std::size_t retried = 0;     // re-send attempts (msgs_sent minus firsts)
  std::size_t duplicated = 0;  // duplicate copies delivered
  // Client-level dropout causes (each sampled client at most once):
  std::size_t transport_dropped = 0;  // retry budget exhausted
  std::size_t deadline_dropped = 0;   // delivered/gave up past the deadline
  std::size_t excess_dropped = 0;     // arrived after the cohort filled
  // Bytes-on-wire accounting (DESIGN.md §15). Sent bytes count EVERY
  // send attempt (retries resend the same encoded payload); received
  // bytes count intact in-deadline deliveries only. fp32_bytes_sent is
  // what the same attempts would have weighed under the identity codec,
  // so fp32_bytes_sent / wire_bytes_sent is the compression ratio
  // actually realized on the wire (== 1 under identity).
  std::size_t fp32_bytes_sent = 0;     // pre-codec payload bytes, all attempts
  std::size_t wire_bytes_sent = 0;     // encoded payload bytes, all attempts
  std::size_t wire_bytes_received = 0; // encoded bytes of intact deliveries
  // Virtual arrival-time quantiles over the round's intact in-deadline
  // deliveries (nearest-rank). In the cumulative totals only
  // arrival_max_ms is meaningful (the per-round quantiles do not compose).
  double arrival_p50_ms = 0.0;
  double arrival_p90_ms = 0.0;
  double arrival_max_ms = 0.0;

  // Add `other`'s counters into this (quantiles: max only).
  void accumulate(const TransportStats& other);
};

enum class DeliveryStatus {
  delivered,  // intact, within the deadline
  late,       // intact delivery (or send schedule) past the deadline
  lost,       // retry budget exhausted without an intact delivery
};

const char* delivery_status_name(DeliveryStatus status);

struct Delivery {
  DeliveryStatus status = DeliveryStatus::lost;
  // Virtual arrival time of the intact delivery (delivered/late), or the
  // last attempt's arrival time (lost).
  double arrival_ms = 0.0;
  std::size_t attempts = 0;
  bool duplicated = false;
  // The update decoded from the wire — present only when delivered. Using
  // the decoded copy (not the sender's object) keeps the wire format on
  // the real path; the codec is bit-exact so this changes nothing.
  std::optional<fl::ClientUpdate> update;
};

class NetworkModel {
 public:
  // Validates the config (finite probabilities in [0, 1], non-negative
  // latencies/backoffs/deadline with latency_min <= latency_max,
  // over_sample in [0, 16]).
  explicit NetworkModel(NetConfig config);

  const NetConfig& config() const { return config_; }

  // Backoff before re-send attempt `failures` (0-based): the capped
  // exponential schedule above. Exposed for tests.
  static double backoff_ms(const NetConfig& config, std::size_t failures);

  // Simulate the full send of `envelope` from `client_id` at `round`:
  // attempts, backoff, deadline. Pure function of (config, client, round)
  // — message-level counters are accumulated into `stats` (caller-owned,
  // typically the round's RoundTelemetry entry), never into the model, so
  // transmit() is const and order-independent.
  Delivery transmit(std::size_t client_id, std::size_t round,
                    const Envelope& envelope, TransportStats* stats) const;

  // Cumulative counters across all rounds (the model's only mutable
  // state; serialized into checkpoints for bit-exact resume).
  const TransportStats& totals() const { return totals_; }
  void accumulate_round(const TransportStats& round_stats);

  void save_state(fl::StateWriter& w) const;
  void load_state(fl::StateReader& r);

 private:
  NetConfig config_;
  TransportStats totals_;
};

}  // namespace collapois::net
