// Deterministic virtual-clock event queue for the asynchronous round
// engine (fl/round_engine.h).
//
// The buffered-async server admits client updates as they arrive on the
// simulated network's VIRTUAL clock — simulated milliseconds, unrelated
// to wall time — so the order updates are admitted in must be a pure
// function of the experiment, never of thread scheduling. The queue
// therefore orders events by a TOTAL key:
//
//     (virtual time, launch round, sampling index)
//
// Two updates can share an arrival time (zero-latency transport, ties in
// the uniform latency draw); the launch round and the sampling index —
// both assigned sequentially at dispatch, before any parallelism — break
// the tie deterministically. Popping always yields the unique minimum, so
// the admission sequence is bit-identical for any thread count, and a
// checkpoint serializes the pending events in exactly that order
// (independent of the heap's internal layout, which the C++ standard
// does not pin down across library implementations).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace collapois::net {

// Monotone virtual clock: time only moves forward.
struct VirtualClock {
  double now_ms = 0.0;
  void advance_to(double t_ms) {
    if (t_ms > now_ms) now_ms = t_ms;
  }
};

// Total-order key for one pending event. `round` is the cycle the update
// was launched in; `seq` is its sampling index within that cycle.
struct EventKey {
  double time_ms = 0.0;
  std::uint64_t round = 0;
  std::uint64_t seq = 0;
};

inline bool operator<(const EventKey& a, const EventKey& b) {
  if (a.time_ms != b.time_ms) return a.time_ms < b.time_ms;
  if (a.round != b.round) return a.round < b.round;
  return a.seq < b.seq;
}

// Min-heap of (key, payload) events under the total order above.
template <typename Payload>
class EventQueue {
 public:
  struct Event {
    EventKey key;
    Payload payload;
  };

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  void push(EventKey key, Payload payload) {
    heap_.push_back(Event{key, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), later);
  }

  // The earliest pending event (unique: the key order is total).
  const Event& top() const { return heap_.front(); }

  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Event e = std::move(heap_.back());
    heap_.pop_back();
    return e;
  }

  void clear() { heap_.clear(); }

  // Visit every pending event in key order without disturbing the queue —
  // the serialization path, so checkpoints are byte-identical regardless
  // of how the standard library arranged the heap internally.
  template <typename Fn>
  void for_each_sorted(Fn&& fn) const {
    std::vector<const Event*> order;
    order.reserve(heap_.size());
    for (const Event& e : heap_) order.push_back(&e);
    std::sort(order.begin(), order.end(),
              [](const Event* a, const Event* b) { return a->key < b->key; });
    for (const Event* e : order) fn(*e);
  }

 private:
  // std::*_heap builds a MAX-heap under the comparator, so "later" on top
  // of the comparator yields a min-heap on the key.
  static bool later(const Event& a, const Event& b) { return b.key < a.key; }

  std::vector<Event> heap_;
};

}  // namespace collapois::net
