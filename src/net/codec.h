// Pluggable update codecs for the simulated transport (DESIGN.md §15).
//
// The Envelope (net/envelope.h) ships a client update as a byte payload;
// the codec decides how the delta vector is represented in that payload:
//
//   identity — raw IEEE-754 bits, byte-identical to the pre-codec wire
//              format. The default; every exactness guarantee in the
//              test/bench suites is stated against this codec.
//   fp16     — IEEE-754 binary16 per element, round-to-nearest-even.
//              ~4x -> ~2x bytes; per-element error <= 2^-11 * |x| in the
//              normal half range, values past 65504 saturate to inf.
//   int8     — symmetric per-tensor linear quantization: scale =
//              max|x| / 127, q = rne(x / scale) in [-127, 127]. ~4x ->
//              ~1x bytes; per-element error <= scale / 2.
//   topk     — magnitude top-k sparsification: keep the k =
//              ceil(fraction * n) largest-|x| coordinates as (varint
//              delta-encoded sorted indices, fp16 values), decode
//              scatters them into a zero vector. Dropped coordinates
//              carry error up to the kept-set threshold.
//
// The lossy codecs cannot represent non-finite values (fp16/topk would
// saturate some, int8's scale would be poisoned), but corrupted updates
// (fl/faults.h corrupt_nan/corrupt_inf) must stay detectable after
// transport: an encoder that meets a non-finite element writes an
// explicit poison marker instead of values, and the decoder returns a
// delta of NaNs with the correct dimension — the server's non-finiteness
// check rejects it exactly as it rejects the fp32 original. What is
// preserved is the POISONED property, not the damage pattern.
//
// Both link ends must agree on the codec; negotiate_codec models the
// handshake (the server offers its configured codec, the client masks it
// against its capabilities, identity is the universal fallback). The
// encoded bytes are BIT-IDENTICAL across the scalar/sse2/avx2 dispatch
// tiers (see codec_tiles.h), so the wire format never depends on the
// host CPU and the codec config — not the tier — is what the checkpoint
// fingerprints (sim/checkpoint.h codec_fingerprint).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "fl/state.h"
#include "tensor/vecops.h"

namespace collapois::net {

enum class CodecKind : std::uint8_t { identity = 0, fp16, int8, topk };

struct CodecConfig {
  CodecKind kind = CodecKind::identity;
  // Quantization width for int8 (the only supported value; the knob
  // exists so the CLI can reject 4/16/... loudly instead of silently).
  std::size_t bits = 8;
  // Kept-coordinate fraction for topk, in (0, 1]; k = max(1,
  // ceil(fraction * n)) per update.
  double topk_fraction = 0.1;
};

const char* codec_kind_name(CodecKind kind);
// Throws std::invalid_argument naming the bad name and the valid set.
CodecKind parse_codec_kind(const std::string& name);
// Validates the knobs for the configured kind (bits == 8 for int8,
// topk_fraction finite in (0, 1] for topk). Throws std::invalid_argument
// with a "CodecConfig: ..." message.
void validate_codec(const CodecConfig& config);

bool codec_is_lossy(CodecKind kind);

// Capability bitmask over CodecKind values (bit k = kind k supported).
std::uint32_t codec_capability_all();
// Per-link negotiation: the server offers its configured codec; a client
// that lacks the capability falls back to identity (always supported —
// it is the raw wire format). Returns the agreed config.
CodecConfig negotiate_codec(const CodecConfig& server_offer,
                            std::uint32_t client_capabilities);

// Scalar reference binary32 <-> binary16 conversion (RNE), exposed for
// the tolerance tests; the tiered kernels match it bitwise.
std::uint16_t codec_float_to_half(float x);
float codec_half_to_float(std::uint16_t h);

// Append the encoded representation of `delta` to `w` / read it back.
// encode/decode are exact inverses for identity, and for the lossy
// codecs reconstruct within the declared tolerance above. decode_delta
// throws std::runtime_error on a malformed body (bad index order,
// out-of-range k, ...) — the Envelope layer converts that into a
// rejected message.
void encode_delta(fl::StateWriter& w, std::span<const float> delta,
                  const CodecConfig& config);
tensor::FlatVec decode_delta(fl::StateReader& r, const CodecConfig& config);

}  // namespace collapois::net
