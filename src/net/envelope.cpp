#include "net/envelope.h"

#include <exception>

#include "fl/state.h"

namespace collapois::net {

std::uint64_t payload_checksum(std::span<const std::uint8_t> payload) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (std::uint8_t b : payload) {
    h ^= b;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

Envelope encode_update(const fl::ClientUpdate& update, std::size_t round) {
  return encode_update(update, round, CodecConfig{});
}

Envelope encode_update(const fl::ClientUpdate& update, std::size_t round,
                       const CodecConfig& codec) {
  fl::StateWriter w;
  w.write_size(update.client_id);
  w.write_double(update.weight);
  w.write_u64(static_cast<std::uint64_t>(update.status));
  w.write_size(update.staleness);
  encode_delta(w, update.delta, codec);

  Envelope env;
  env.sender_id = update.client_id;
  env.round = round;
  env.codec = codec.kind;
  // Identity payload layout: the four header fields above (8 bytes
  // each), the floats length prefix (8), then 4 bytes per element.
  env.fp32_bytes = 5 * sizeof(std::uint64_t) + 4 * update.delta.size();
  env.payload = w.take();
  env.checksum = payload_checksum(env.payload);
  return env;
}

std::optional<fl::ClientUpdate> decode_update(const Envelope& envelope) {
  if (payload_checksum(envelope.payload) != envelope.checksum) {
    return std::nullopt;
  }
  // The codec field is routing metadata (outside the checksum); an
  // unknown value means a damaged or forged header, not a parse bug.
  if (envelope.codec != CodecKind::identity &&
      envelope.codec != CodecKind::fp16 &&
      envelope.codec != CodecKind::int8 && envelope.codec != CodecKind::topk) {
    return std::nullopt;
  }
  // The checksum passed, so the payload is the bytes the sender wrote and
  // must parse; a parse failure here would mean a codec bug, but the
  // receiver still refuses the message rather than crashing the round.
  try {
    fl::StateReader r(envelope.payload);
    fl::ClientUpdate u;
    u.client_id = r.read_size();
    u.weight = r.read_double();
    const std::uint64_t status = r.read_u64();
    if (status > static_cast<std::uint64_t>(fl::UpdateStatus::straggler)) {
      return std::nullopt;
    }
    u.status = static_cast<fl::UpdateStatus>(status);
    u.staleness = r.read_size();
    CodecConfig codec;
    codec.kind = envelope.codec;  // decoders key on the kind alone
    u.delta = decode_delta(r, codec);
    if (!r.exhausted()) return std::nullopt;
    return u;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace collapois::net
