// Message envelope for the simulated transport (src/net/).
//
// Client updates cross the simulated network as byte payloads, not as
// in-process objects: the sender serializes its ClientUpdate through the
// fl/state binary codec and stamps an FNV-1a checksum over the payload.
// The receiver verifies the checksum BEFORE parsing, so a truncated or
// bit-flipped message is detected at the network boundary — with a
// telemetry counter — instead of surfacing as a mysterious NaN deep in
// aggregation (or as a StateReader overrun).
//
// The delta vector's wire representation is decided by the negotiated
// update codec (net/codec.h): the agreed kind rides in the envelope
// header (routing metadata, outside the checksummed payload) and the
// checksum covers the ENCODED payload — the bytes that actually cross
// the wire. The default identity codec is bit-exact (raw IEEE-754 bits,
// little-endian), so a clean wire round-trip returns the identical
// update, float for float — the property the zero-fault transport
// configuration's element-exactness guarantee rests on. The lossy
// codecs trade that exactness for bytes; fp32_bytes records what the
// uncompressed payload would have weighed so TransportStats can account
// the compression ratio.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fl/update.h"
#include "net/codec.h"

namespace collapois::net {

// 64-bit FNV-1a over the payload bytes. Not cryptographic — the threat
// here is faults (truncation, bit flips), not forgery.
std::uint64_t payload_checksum(std::span<const std::uint8_t> payload);

struct Envelope {
  // Routing metadata travels outside the checksummed payload, like a
  // packet header.
  std::size_t sender_id = 0;
  std::size_t round = 0;
  // The negotiated update codec this payload was encoded with; the
  // receiver selects its decoder from this field.
  CodecKind codec = CodecKind::identity;
  // What the identity-encoded payload would have weighed, for
  // bytes-on-wire accounting (== payload.size() under identity).
  std::size_t fp32_bytes = 0;
  std::uint64_t checksum = 0;
  std::vector<std::uint8_t> payload;
};

// Serialize an update into a checksummed envelope with the negotiated
// codec (the 2-arg overload is the identity codec — the raw pre-codec
// wire format, byte-identical to what it has always produced).
Envelope encode_update(const fl::ClientUpdate& update, std::size_t round);
Envelope encode_update(const fl::ClientUpdate& update, std::size_t round,
                       const CodecConfig& codec);

// Verify the checksum, then parse with the decoder the envelope header
// names. Returns nullopt when the checksum does not match the payload
// (damaged in flight), the codec field is not a known kind, or the
// payload does not parse cleanly (every byte must be consumed).
std::optional<fl::ClientUpdate> decode_update(const Envelope& envelope);

}  // namespace collapois::net
