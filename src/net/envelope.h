// Message envelope for the simulated transport (src/net/).
//
// Client updates cross the simulated network as byte payloads, not as
// in-process objects: the sender serializes its ClientUpdate through the
// fl/state binary codec and stamps an FNV-1a checksum over the payload.
// The receiver verifies the checksum BEFORE parsing, so a truncated or
// bit-flipped message is detected at the network boundary — with a
// telemetry counter — instead of surfacing as a mysterious NaN deep in
// aggregation (or as a StateReader overrun). The codec is bit-exact
// (raw IEEE-754 bits, little-endian), so a clean wire round-trip returns
// the identical update, float for float — the property the zero-fault
// transport configuration's element-exactness guarantee rests on.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fl/update.h"

namespace collapois::net {

// 64-bit FNV-1a over the payload bytes. Not cryptographic — the threat
// here is faults (truncation, bit flips), not forgery.
std::uint64_t payload_checksum(std::span<const std::uint8_t> payload);

struct Envelope {
  // Routing metadata travels outside the checksummed payload, like a
  // packet header.
  std::size_t sender_id = 0;
  std::size_t round = 0;
  std::uint64_t checksum = 0;
  std::vector<std::uint8_t> payload;
};

// Serialize an update into a checksummed envelope.
Envelope encode_update(const fl::ClientUpdate& update, std::size_t round);

// Verify the checksum, then parse. Returns nullopt when the checksum does
// not match the payload (damaged in flight) or the payload does not parse
// cleanly (every byte must be consumed).
std::optional<fl::ClientUpdate> decode_update(const Envelope& envelope);

}  // namespace collapois::net
