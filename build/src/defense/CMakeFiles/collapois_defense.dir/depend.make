# Empty dependencies file for collapois_defense.
# This may be replaced when dependencies are built.
