
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defense/crfl.cpp" "src/defense/CMakeFiles/collapois_defense.dir/crfl.cpp.o" "gcc" "src/defense/CMakeFiles/collapois_defense.dir/crfl.cpp.o.d"
  "/root/repo/src/defense/detector.cpp" "src/defense/CMakeFiles/collapois_defense.dir/detector.cpp.o" "gcc" "src/defense/CMakeFiles/collapois_defense.dir/detector.cpp.o.d"
  "/root/repo/src/defense/ditto.cpp" "src/defense/CMakeFiles/collapois_defense.dir/ditto.cpp.o" "gcc" "src/defense/CMakeFiles/collapois_defense.dir/ditto.cpp.o.d"
  "/root/repo/src/defense/flare.cpp" "src/defense/CMakeFiles/collapois_defense.dir/flare.cpp.o" "gcc" "src/defense/CMakeFiles/collapois_defense.dir/flare.cpp.o.d"
  "/root/repo/src/defense/inference_detect.cpp" "src/defense/CMakeFiles/collapois_defense.dir/inference_detect.cpp.o" "gcc" "src/defense/CMakeFiles/collapois_defense.dir/inference_detect.cpp.o.d"
  "/root/repo/src/defense/krum.cpp" "src/defense/CMakeFiles/collapois_defense.dir/krum.cpp.o" "gcc" "src/defense/CMakeFiles/collapois_defense.dir/krum.cpp.o.d"
  "/root/repo/src/defense/median.cpp" "src/defense/CMakeFiles/collapois_defense.dir/median.cpp.o" "gcc" "src/defense/CMakeFiles/collapois_defense.dir/median.cpp.o.d"
  "/root/repo/src/defense/normbound.cpp" "src/defense/CMakeFiles/collapois_defense.dir/normbound.cpp.o" "gcc" "src/defense/CMakeFiles/collapois_defense.dir/normbound.cpp.o.d"
  "/root/repo/src/defense/registry.cpp" "src/defense/CMakeFiles/collapois_defense.dir/registry.cpp.o" "gcc" "src/defense/CMakeFiles/collapois_defense.dir/registry.cpp.o.d"
  "/root/repo/src/defense/rlr.cpp" "src/defense/CMakeFiles/collapois_defense.dir/rlr.cpp.o" "gcc" "src/defense/CMakeFiles/collapois_defense.dir/rlr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/collapois_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/collapois_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/collapois_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/collapois_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/collapois_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
