file(REMOVE_RECURSE
  "libcollapois_defense.a"
)
