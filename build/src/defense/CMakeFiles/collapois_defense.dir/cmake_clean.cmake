file(REMOVE_RECURSE
  "CMakeFiles/collapois_defense.dir/crfl.cpp.o"
  "CMakeFiles/collapois_defense.dir/crfl.cpp.o.d"
  "CMakeFiles/collapois_defense.dir/detector.cpp.o"
  "CMakeFiles/collapois_defense.dir/detector.cpp.o.d"
  "CMakeFiles/collapois_defense.dir/ditto.cpp.o"
  "CMakeFiles/collapois_defense.dir/ditto.cpp.o.d"
  "CMakeFiles/collapois_defense.dir/flare.cpp.o"
  "CMakeFiles/collapois_defense.dir/flare.cpp.o.d"
  "CMakeFiles/collapois_defense.dir/inference_detect.cpp.o"
  "CMakeFiles/collapois_defense.dir/inference_detect.cpp.o.d"
  "CMakeFiles/collapois_defense.dir/krum.cpp.o"
  "CMakeFiles/collapois_defense.dir/krum.cpp.o.d"
  "CMakeFiles/collapois_defense.dir/median.cpp.o"
  "CMakeFiles/collapois_defense.dir/median.cpp.o.d"
  "CMakeFiles/collapois_defense.dir/normbound.cpp.o"
  "CMakeFiles/collapois_defense.dir/normbound.cpp.o.d"
  "CMakeFiles/collapois_defense.dir/registry.cpp.o"
  "CMakeFiles/collapois_defense.dir/registry.cpp.o.d"
  "CMakeFiles/collapois_defense.dir/rlr.cpp.o"
  "CMakeFiles/collapois_defense.dir/rlr.cpp.o.d"
  "libcollapois_defense.a"
  "libcollapois_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapois_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
