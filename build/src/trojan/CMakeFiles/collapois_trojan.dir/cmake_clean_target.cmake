file(REMOVE_RECURSE
  "libcollapois_trojan.a"
)
