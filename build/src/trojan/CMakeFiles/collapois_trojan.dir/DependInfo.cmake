
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trojan/embedding_trigger.cpp" "src/trojan/CMakeFiles/collapois_trojan.dir/embedding_trigger.cpp.o" "gcc" "src/trojan/CMakeFiles/collapois_trojan.dir/embedding_trigger.cpp.o.d"
  "/root/repo/src/trojan/patch_trigger.cpp" "src/trojan/CMakeFiles/collapois_trojan.dir/patch_trigger.cpp.o" "gcc" "src/trojan/CMakeFiles/collapois_trojan.dir/patch_trigger.cpp.o.d"
  "/root/repo/src/trojan/poison.cpp" "src/trojan/CMakeFiles/collapois_trojan.dir/poison.cpp.o" "gcc" "src/trojan/CMakeFiles/collapois_trojan.dir/poison.cpp.o.d"
  "/root/repo/src/trojan/trigger.cpp" "src/trojan/CMakeFiles/collapois_trojan.dir/trigger.cpp.o" "gcc" "src/trojan/CMakeFiles/collapois_trojan.dir/trigger.cpp.o.d"
  "/root/repo/src/trojan/warp_trigger.cpp" "src/trojan/CMakeFiles/collapois_trojan.dir/warp_trigger.cpp.o" "gcc" "src/trojan/CMakeFiles/collapois_trojan.dir/warp_trigger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/collapois_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/collapois_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/collapois_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
