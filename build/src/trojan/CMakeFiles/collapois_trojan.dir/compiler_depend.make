# Empty compiler generated dependencies file for collapois_trojan.
# This may be replaced when dependencies are built.
