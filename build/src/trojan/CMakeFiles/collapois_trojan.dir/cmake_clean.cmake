file(REMOVE_RECURSE
  "CMakeFiles/collapois_trojan.dir/embedding_trigger.cpp.o"
  "CMakeFiles/collapois_trojan.dir/embedding_trigger.cpp.o.d"
  "CMakeFiles/collapois_trojan.dir/patch_trigger.cpp.o"
  "CMakeFiles/collapois_trojan.dir/patch_trigger.cpp.o.d"
  "CMakeFiles/collapois_trojan.dir/poison.cpp.o"
  "CMakeFiles/collapois_trojan.dir/poison.cpp.o.d"
  "CMakeFiles/collapois_trojan.dir/trigger.cpp.o"
  "CMakeFiles/collapois_trojan.dir/trigger.cpp.o.d"
  "CMakeFiles/collapois_trojan.dir/warp_trigger.cpp.o"
  "CMakeFiles/collapois_trojan.dir/warp_trigger.cpp.o.d"
  "libcollapois_trojan.a"
  "libcollapois_trojan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapois_trojan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
