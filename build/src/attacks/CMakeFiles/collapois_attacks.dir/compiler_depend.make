# Empty compiler generated dependencies file for collapois_attacks.
# This may be replaced when dependencies are built.
