file(REMOVE_RECURSE
  "libcollapois_attacks.a"
)
