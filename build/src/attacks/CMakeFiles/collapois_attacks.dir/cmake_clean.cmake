file(REMOVE_RECURSE
  "CMakeFiles/collapois_attacks.dir/dba.cpp.o"
  "CMakeFiles/collapois_attacks.dir/dba.cpp.o.d"
  "CMakeFiles/collapois_attacks.dir/dpois.cpp.o"
  "CMakeFiles/collapois_attacks.dir/dpois.cpp.o.d"
  "CMakeFiles/collapois_attacks.dir/mrepl.cpp.o"
  "CMakeFiles/collapois_attacks.dir/mrepl.cpp.o.d"
  "CMakeFiles/collapois_attacks.dir/poison_training_client.cpp.o"
  "CMakeFiles/collapois_attacks.dir/poison_training_client.cpp.o.d"
  "libcollapois_attacks.a"
  "libcollapois_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapois_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
