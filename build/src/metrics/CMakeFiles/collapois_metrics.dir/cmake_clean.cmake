file(REMOVE_RECURSE
  "CMakeFiles/collapois_metrics.dir/client_metrics.cpp.o"
  "CMakeFiles/collapois_metrics.dir/client_metrics.cpp.o.d"
  "CMakeFiles/collapois_metrics.dir/clusters.cpp.o"
  "CMakeFiles/collapois_metrics.dir/clusters.cpp.o.d"
  "CMakeFiles/collapois_metrics.dir/telemetry.cpp.o"
  "CMakeFiles/collapois_metrics.dir/telemetry.cpp.o.d"
  "libcollapois_metrics.a"
  "libcollapois_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapois_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
