file(REMOVE_RECURSE
  "libcollapois_metrics.a"
)
