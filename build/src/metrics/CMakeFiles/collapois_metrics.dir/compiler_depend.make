# Empty compiler generated dependencies file for collapois_metrics.
# This may be replaced when dependencies are built.
