# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("stats")
subdirs("tensor")
subdirs("data")
subdirs("trojan")
subdirs("nn")
subdirs("fl")
subdirs("attacks")
subdirs("defense")
subdirs("metrics")
subdirs("core")
subdirs("sim")
