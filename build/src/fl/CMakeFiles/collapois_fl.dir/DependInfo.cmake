
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/aggregator.cpp" "src/fl/CMakeFiles/collapois_fl.dir/aggregator.cpp.o" "gcc" "src/fl/CMakeFiles/collapois_fl.dir/aggregator.cpp.o.d"
  "/root/repo/src/fl/client.cpp" "src/fl/CMakeFiles/collapois_fl.dir/client.cpp.o" "gcc" "src/fl/CMakeFiles/collapois_fl.dir/client.cpp.o.d"
  "/root/repo/src/fl/metafed.cpp" "src/fl/CMakeFiles/collapois_fl.dir/metafed.cpp.o" "gcc" "src/fl/CMakeFiles/collapois_fl.dir/metafed.cpp.o.d"
  "/root/repo/src/fl/server.cpp" "src/fl/CMakeFiles/collapois_fl.dir/server.cpp.o" "gcc" "src/fl/CMakeFiles/collapois_fl.dir/server.cpp.o.d"
  "/root/repo/src/fl/server_algorithm.cpp" "src/fl/CMakeFiles/collapois_fl.dir/server_algorithm.cpp.o" "gcc" "src/fl/CMakeFiles/collapois_fl.dir/server_algorithm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/collapois_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/collapois_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/collapois_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/collapois_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
