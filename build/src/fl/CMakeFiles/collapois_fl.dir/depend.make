# Empty dependencies file for collapois_fl.
# This may be replaced when dependencies are built.
