file(REMOVE_RECURSE
  "CMakeFiles/collapois_fl.dir/aggregator.cpp.o"
  "CMakeFiles/collapois_fl.dir/aggregator.cpp.o.d"
  "CMakeFiles/collapois_fl.dir/client.cpp.o"
  "CMakeFiles/collapois_fl.dir/client.cpp.o.d"
  "CMakeFiles/collapois_fl.dir/metafed.cpp.o"
  "CMakeFiles/collapois_fl.dir/metafed.cpp.o.d"
  "CMakeFiles/collapois_fl.dir/server.cpp.o"
  "CMakeFiles/collapois_fl.dir/server.cpp.o.d"
  "CMakeFiles/collapois_fl.dir/server_algorithm.cpp.o"
  "CMakeFiles/collapois_fl.dir/server_algorithm.cpp.o.d"
  "libcollapois_fl.a"
  "libcollapois_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapois_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
