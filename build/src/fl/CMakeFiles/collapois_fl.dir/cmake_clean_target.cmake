file(REMOVE_RECURSE
  "libcollapois_fl.a"
)
