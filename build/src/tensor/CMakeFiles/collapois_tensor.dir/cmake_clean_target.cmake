file(REMOVE_RECURSE
  "libcollapois_tensor.a"
)
