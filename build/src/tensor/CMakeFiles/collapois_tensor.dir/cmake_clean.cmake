file(REMOVE_RECURSE
  "CMakeFiles/collapois_tensor.dir/linalg.cpp.o"
  "CMakeFiles/collapois_tensor.dir/linalg.cpp.o.d"
  "CMakeFiles/collapois_tensor.dir/tensor.cpp.o"
  "CMakeFiles/collapois_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/collapois_tensor.dir/vecops.cpp.o"
  "CMakeFiles/collapois_tensor.dir/vecops.cpp.o.d"
  "libcollapois_tensor.a"
  "libcollapois_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapois_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
