# Empty dependencies file for collapois_tensor.
# This may be replaced when dependencies are built.
