file(REMOVE_RECURSE
  "CMakeFiles/collapois_data.dir/dataset.cpp.o"
  "CMakeFiles/collapois_data.dir/dataset.cpp.o.d"
  "CMakeFiles/collapois_data.dir/partition.cpp.o"
  "CMakeFiles/collapois_data.dir/partition.cpp.o.d"
  "CMakeFiles/collapois_data.dir/synthetic_image.cpp.o"
  "CMakeFiles/collapois_data.dir/synthetic_image.cpp.o.d"
  "CMakeFiles/collapois_data.dir/synthetic_text.cpp.o"
  "CMakeFiles/collapois_data.dir/synthetic_text.cpp.o.d"
  "libcollapois_data.a"
  "libcollapois_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapois_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
