file(REMOVE_RECURSE
  "libcollapois_data.a"
)
