# Empty dependencies file for collapois_data.
# This may be replaced when dependencies are built.
