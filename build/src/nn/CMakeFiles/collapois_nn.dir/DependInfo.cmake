
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/eval.cpp" "src/nn/CMakeFiles/collapois_nn.dir/eval.cpp.o" "gcc" "src/nn/CMakeFiles/collapois_nn.dir/eval.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/collapois_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/collapois_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/collapois_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/collapois_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/collapois_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/collapois_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/sgd.cpp" "src/nn/CMakeFiles/collapois_nn.dir/sgd.cpp.o" "gcc" "src/nn/CMakeFiles/collapois_nn.dir/sgd.cpp.o.d"
  "/root/repo/src/nn/zoo.cpp" "src/nn/CMakeFiles/collapois_nn.dir/zoo.cpp.o" "gcc" "src/nn/CMakeFiles/collapois_nn.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/collapois_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/collapois_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/collapois_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
