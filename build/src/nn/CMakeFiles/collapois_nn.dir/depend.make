# Empty dependencies file for collapois_nn.
# This may be replaced when dependencies are built.
