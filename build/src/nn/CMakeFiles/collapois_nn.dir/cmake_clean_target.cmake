file(REMOVE_RECURSE
  "libcollapois_nn.a"
)
