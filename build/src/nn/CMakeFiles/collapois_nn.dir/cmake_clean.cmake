file(REMOVE_RECURSE
  "CMakeFiles/collapois_nn.dir/eval.cpp.o"
  "CMakeFiles/collapois_nn.dir/eval.cpp.o.d"
  "CMakeFiles/collapois_nn.dir/layers.cpp.o"
  "CMakeFiles/collapois_nn.dir/layers.cpp.o.d"
  "CMakeFiles/collapois_nn.dir/loss.cpp.o"
  "CMakeFiles/collapois_nn.dir/loss.cpp.o.d"
  "CMakeFiles/collapois_nn.dir/model.cpp.o"
  "CMakeFiles/collapois_nn.dir/model.cpp.o.d"
  "CMakeFiles/collapois_nn.dir/sgd.cpp.o"
  "CMakeFiles/collapois_nn.dir/sgd.cpp.o.d"
  "CMakeFiles/collapois_nn.dir/zoo.cpp.o"
  "CMakeFiles/collapois_nn.dir/zoo.cpp.o.d"
  "libcollapois_nn.a"
  "libcollapois_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapois_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
