file(REMOVE_RECURSE
  "CMakeFiles/collapois_stats.dir/geometry.cpp.o"
  "CMakeFiles/collapois_stats.dir/geometry.cpp.o.d"
  "CMakeFiles/collapois_stats.dir/rng.cpp.o"
  "CMakeFiles/collapois_stats.dir/rng.cpp.o.d"
  "CMakeFiles/collapois_stats.dir/special.cpp.o"
  "CMakeFiles/collapois_stats.dir/special.cpp.o.d"
  "CMakeFiles/collapois_stats.dir/summary.cpp.o"
  "CMakeFiles/collapois_stats.dir/summary.cpp.o.d"
  "CMakeFiles/collapois_stats.dir/tests.cpp.o"
  "CMakeFiles/collapois_stats.dir/tests.cpp.o.d"
  "libcollapois_stats.a"
  "libcollapois_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapois_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
