file(REMOVE_RECURSE
  "libcollapois_stats.a"
)
