# Empty dependencies file for collapois_stats.
# This may be replaced when dependencies are built.
