file(REMOVE_RECURSE
  "libcollapois_sim.a"
)
