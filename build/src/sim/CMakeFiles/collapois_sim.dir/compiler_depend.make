# Empty compiler generated dependencies file for collapois_sim.
# This may be replaced when dependencies are built.
