file(REMOVE_RECURSE
  "CMakeFiles/collapois_sim.dir/config.cpp.o"
  "CMakeFiles/collapois_sim.dir/config.cpp.o.d"
  "CMakeFiles/collapois_sim.dir/report.cpp.o"
  "CMakeFiles/collapois_sim.dir/report.cpp.o.d"
  "CMakeFiles/collapois_sim.dir/runner.cpp.o"
  "CMakeFiles/collapois_sim.dir/runner.cpp.o.d"
  "libcollapois_sim.a"
  "libcollapois_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapois_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
