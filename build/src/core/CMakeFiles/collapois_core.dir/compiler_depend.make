# Empty compiler generated dependencies file for collapois_core.
# This may be replaced when dependencies are built.
