file(REMOVE_RECURSE
  "CMakeFiles/collapois_core.dir/collapois_client.cpp.o"
  "CMakeFiles/collapois_core.dir/collapois_client.cpp.o.d"
  "CMakeFiles/collapois_core.dir/stealth.cpp.o"
  "CMakeFiles/collapois_core.dir/stealth.cpp.o.d"
  "CMakeFiles/collapois_core.dir/targeted.cpp.o"
  "CMakeFiles/collapois_core.dir/targeted.cpp.o.d"
  "CMakeFiles/collapois_core.dir/theory.cpp.o"
  "CMakeFiles/collapois_core.dir/theory.cpp.o.d"
  "CMakeFiles/collapois_core.dir/trojan_trainer.cpp.o"
  "CMakeFiles/collapois_core.dir/trojan_trainer.cpp.o.d"
  "libcollapois_core.a"
  "libcollapois_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapois_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
