file(REMOVE_RECURSE
  "libcollapois_core.a"
)
