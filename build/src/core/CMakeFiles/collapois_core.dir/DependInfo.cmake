
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/collapois_client.cpp" "src/core/CMakeFiles/collapois_core.dir/collapois_client.cpp.o" "gcc" "src/core/CMakeFiles/collapois_core.dir/collapois_client.cpp.o.d"
  "/root/repo/src/core/stealth.cpp" "src/core/CMakeFiles/collapois_core.dir/stealth.cpp.o" "gcc" "src/core/CMakeFiles/collapois_core.dir/stealth.cpp.o.d"
  "/root/repo/src/core/targeted.cpp" "src/core/CMakeFiles/collapois_core.dir/targeted.cpp.o" "gcc" "src/core/CMakeFiles/collapois_core.dir/targeted.cpp.o.d"
  "/root/repo/src/core/theory.cpp" "src/core/CMakeFiles/collapois_core.dir/theory.cpp.o" "gcc" "src/core/CMakeFiles/collapois_core.dir/theory.cpp.o.d"
  "/root/repo/src/core/trojan_trainer.cpp" "src/core/CMakeFiles/collapois_core.dir/trojan_trainer.cpp.o" "gcc" "src/core/CMakeFiles/collapois_core.dir/trojan_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/collapois_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/trojan/CMakeFiles/collapois_trojan.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/collapois_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/collapois_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/collapois_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/collapois_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
