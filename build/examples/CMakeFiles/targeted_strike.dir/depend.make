# Empty dependencies file for targeted_strike.
# This may be replaced when dependencies are built.
