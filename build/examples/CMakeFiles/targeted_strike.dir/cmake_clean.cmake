file(REMOVE_RECURSE
  "CMakeFiles/targeted_strike.dir/targeted_strike.cpp.o"
  "CMakeFiles/targeted_strike.dir/targeted_strike.cpp.o.d"
  "targeted_strike"
  "targeted_strike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/targeted_strike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
