file(REMOVE_RECURSE
  "CMakeFiles/collapois_cli.dir/collapois_cli.cpp.o"
  "CMakeFiles/collapois_cli.dir/collapois_cli.cpp.o.d"
  "collapois_cli"
  "collapois_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapois_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
