# Empty compiler generated dependencies file for collapois_cli.
# This may be replaced when dependencies are built.
