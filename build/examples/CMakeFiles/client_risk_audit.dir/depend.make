# Empty dependencies file for client_risk_audit.
# This may be replaced when dependencies are built.
