file(REMOVE_RECURSE
  "CMakeFiles/client_risk_audit.dir/client_risk_audit.cpp.o"
  "CMakeFiles/client_risk_audit.dir/client_risk_audit.cpp.o.d"
  "client_risk_audit"
  "client_risk_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_risk_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
