file(REMOVE_RECURSE
  "CMakeFiles/defense_shootout.dir/defense_shootout.cpp.o"
  "CMakeFiles/defense_shootout.dir/defense_shootout.cpp.o.d"
  "defense_shootout"
  "defense_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
