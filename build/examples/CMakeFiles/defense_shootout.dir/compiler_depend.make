# Empty compiler generated dependencies file for defense_shootout.
# This may be replaced when dependencies are built.
