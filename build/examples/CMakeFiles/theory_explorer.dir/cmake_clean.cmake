file(REMOVE_RECURSE
  "CMakeFiles/theory_explorer.dir/theory_explorer.cpp.o"
  "CMakeFiles/theory_explorer.dir/theory_explorer.cpp.o.d"
  "theory_explorer"
  "theory_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
