
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_attacks.cpp" "tests/CMakeFiles/collapois_tests.dir/test_attacks.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_attacks.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/collapois_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/collapois_tests.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_data.cpp.o.d"
  "/root/repo/tests/test_defense.cpp" "tests/CMakeFiles/collapois_tests.dir/test_defense.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_defense.cpp.o.d"
  "/root/repo/tests/test_defense_extended.cpp" "tests/CMakeFiles/collapois_tests.dir/test_defense_extended.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_defense_extended.cpp.o.d"
  "/root/repo/tests/test_fl.cpp" "tests/CMakeFiles/collapois_tests.dir/test_fl.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_fl.cpp.o.d"
  "/root/repo/tests/test_inference_detect.cpp" "tests/CMakeFiles/collapois_tests.dir/test_inference_detect.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_inference_detect.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/collapois_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_nn_layers.cpp" "tests/CMakeFiles/collapois_tests.dir/test_nn_layers.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_nn_layers.cpp.o.d"
  "/root/repo/tests/test_nn_training.cpp" "tests/CMakeFiles/collapois_tests.dir/test_nn_training.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_nn_training.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/collapois_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/collapois_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_sim_integration.cpp" "tests/CMakeFiles/collapois_tests.dir/test_sim_integration.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_sim_integration.cpp.o.d"
  "/root/repo/tests/test_stats_geometry.cpp" "tests/CMakeFiles/collapois_tests.dir/test_stats_geometry.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_stats_geometry.cpp.o.d"
  "/root/repo/tests/test_stats_rng.cpp" "tests/CMakeFiles/collapois_tests.dir/test_stats_rng.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_stats_rng.cpp.o.d"
  "/root/repo/tests/test_stats_special.cpp" "tests/CMakeFiles/collapois_tests.dir/test_stats_special.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_stats_special.cpp.o.d"
  "/root/repo/tests/test_stats_summary.cpp" "tests/CMakeFiles/collapois_tests.dir/test_stats_summary.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_stats_summary.cpp.o.d"
  "/root/repo/tests/test_stats_tests.cpp" "tests/CMakeFiles/collapois_tests.dir/test_stats_tests.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_stats_tests.cpp.o.d"
  "/root/repo/tests/test_targeted.cpp" "tests/CMakeFiles/collapois_tests.dir/test_targeted.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_targeted.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/collapois_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_trojan.cpp" "tests/CMakeFiles/collapois_tests.dir/test_trojan.cpp.o" "gcc" "tests/CMakeFiles/collapois_tests.dir/test_trojan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/collapois_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/collapois_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/collapois_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/collapois_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/collapois_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/collapois_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/trojan/CMakeFiles/collapois_trojan.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/collapois_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/collapois_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/collapois_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/collapois_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
