# Empty dependencies file for collapois_tests.
# This may be replaced when dependencies are built.
