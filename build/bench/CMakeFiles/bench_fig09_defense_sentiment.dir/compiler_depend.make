# Empty compiler generated dependencies file for bench_fig09_defense_sentiment.
# This may be replaced when dependencies are built.
