file(REMOVE_RECURSE
  "CMakeFiles/bench_seed_variance.dir/bench_seed_variance.cpp.o"
  "CMakeFiles/bench_seed_variance.dir/bench_seed_variance.cpp.o.d"
  "bench_seed_variance"
  "bench_seed_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seed_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
