file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_longevity.dir/bench_fig13_longevity.cpp.o"
  "CMakeFiles/bench_fig13_longevity.dir/bench_fig13_longevity.cpp.o.d"
  "bench_fig13_longevity"
  "bench_fig13_longevity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_longevity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
