file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_stealth_angles.dir/bench_fig06_stealth_angles.cpp.o"
  "CMakeFiles/bench_fig06_stealth_angles.dir/bench_fig06_stealth_angles.cpp.o.d"
  "bench_fig06_stealth_angles"
  "bench_fig06_stealth_angles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_stealth_angles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
