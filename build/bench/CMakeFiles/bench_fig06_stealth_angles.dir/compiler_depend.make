# Empty compiler generated dependencies file for bench_fig06_stealth_angles.
# This may be replaced when dependencies are built.
