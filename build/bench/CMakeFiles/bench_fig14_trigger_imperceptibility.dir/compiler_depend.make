# Empty compiler generated dependencies file for bench_fig14_trigger_imperceptibility.
# This may be replaced when dependencies are built.
