file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_trigger_imperceptibility.dir/bench_fig14_trigger_imperceptibility.cpp.o"
  "CMakeFiles/bench_fig14_trigger_imperceptibility.dir/bench_fig14_trigger_imperceptibility.cpp.o.d"
  "bench_fig14_trigger_imperceptibility"
  "bench_fig14_trigger_imperceptibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_trigger_imperceptibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
