
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_topk_sentiment.cpp" "bench/CMakeFiles/bench_fig10_topk_sentiment.dir/bench_fig10_topk_sentiment.cpp.o" "gcc" "bench/CMakeFiles/bench_fig10_topk_sentiment.dir/bench_fig10_topk_sentiment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/collapois_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/collapois_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/collapois_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/collapois_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/collapois_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/collapois_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/trojan/CMakeFiles/collapois_trojan.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/collapois_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/collapois_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/collapois_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/collapois_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
