file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_topk_sentiment.dir/bench_fig10_topk_sentiment.cpp.o"
  "CMakeFiles/bench_fig10_topk_sentiment.dir/bench_fig10_topk_sentiment.cpp.o.d"
  "bench_fig10_topk_sentiment"
  "bench_fig10_topk_sentiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_topk_sentiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
