# Empty dependencies file for bench_fig10_topk_sentiment.
# This may be replaced when dependencies are built.
