# Empty compiler generated dependencies file for bench_fig03_gradient_angles.
# This may be replaced when dependencies are built.
