file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_gradient_angles.dir/bench_fig03_gradient_angles.cpp.o"
  "CMakeFiles/bench_fig03_gradient_angles.dir/bench_fig03_gradient_angles.cpp.o.d"
  "bench_fig03_gradient_angles"
  "bench_fig03_gradient_angles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_gradient_angles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
