# Empty dependencies file for bench_stat_bypass.
# This may be replaced when dependencies are built.
