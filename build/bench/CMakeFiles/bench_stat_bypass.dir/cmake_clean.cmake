file(REMOVE_RECURSE
  "CMakeFiles/bench_stat_bypass.dir/bench_stat_bypass.cpp.o"
  "CMakeFiles/bench_stat_bypass.dir/bench_stat_bypass.cpp.o.d"
  "bench_stat_bypass"
  "bench_stat_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stat_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
