# Empty compiler generated dependencies file for bench_fig12_label_proximity.
# This may be replaced when dependencies are built.
