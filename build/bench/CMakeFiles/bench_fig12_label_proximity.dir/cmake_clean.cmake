file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_label_proximity.dir/bench_fig12_label_proximity.cpp.o"
  "CMakeFiles/bench_fig12_label_proximity.dir/bench_fig12_label_proximity.cpp.o.d"
  "bench_fig12_label_proximity"
  "bench_fig12_label_proximity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_label_proximity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
