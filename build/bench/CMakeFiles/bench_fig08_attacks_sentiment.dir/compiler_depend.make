# Empty compiler generated dependencies file for bench_fig08_attacks_sentiment.
# This may be replaced when dependencies are built.
