# Empty compiler generated dependencies file for bench_fig05_bound_surface.
# This may be replaced when dependencies are built.
