file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_defense_registry.dir/bench_table1_defense_registry.cpp.o"
  "CMakeFiles/bench_table1_defense_registry.dir/bench_table1_defense_registry.cpp.o.d"
  "bench_table1_defense_registry"
  "bench_table1_defense_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_defense_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
