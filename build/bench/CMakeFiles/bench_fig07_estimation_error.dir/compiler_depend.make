# Empty compiler generated dependencies file for bench_fig07_estimation_error.
# This may be replaced when dependencies are built.
