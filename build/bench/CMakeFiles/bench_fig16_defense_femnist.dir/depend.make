# Empty dependencies file for bench_fig16_defense_femnist.
# This may be replaced when dependencies are built.
