file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_defense_femnist.dir/bench_fig16_defense_femnist.cpp.o"
  "CMakeFiles/bench_fig16_defense_femnist.dir/bench_fig16_defense_femnist.cpp.o.d"
  "bench_fig16_defense_femnist"
  "bench_fig16_defense_femnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_defense_femnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
