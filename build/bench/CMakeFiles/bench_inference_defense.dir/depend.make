# Empty dependencies file for bench_inference_defense.
# This may be replaced when dependencies are built.
