file(REMOVE_RECURSE
  "CMakeFiles/bench_inference_defense.dir/bench_inference_defense.cpp.o"
  "CMakeFiles/bench_inference_defense.dir/bench_inference_defense.cpp.o.d"
  "bench_inference_defense"
  "bench_inference_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inference_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
