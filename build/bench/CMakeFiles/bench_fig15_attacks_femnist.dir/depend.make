# Empty dependencies file for bench_fig15_attacks_femnist.
# This may be replaced when dependencies are built.
