# Empty compiler generated dependencies file for bench_fig25_topk_femnist.
# This may be replaced when dependencies are built.
