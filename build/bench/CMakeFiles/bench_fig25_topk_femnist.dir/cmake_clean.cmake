file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_topk_femnist.dir/bench_fig25_topk_femnist.cpp.o"
  "CMakeFiles/bench_fig25_topk_femnist.dir/bench_fig25_topk_femnist.cpp.o.d"
  "bench_fig25_topk_femnist"
  "bench_fig25_topk_femnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_topk_femnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
