// Runtime scaling — the parallel round loop's speedup curve, under both
// compute-kernel sets.
//
// Sweeps kernels {naive, blocked} x threads {1, 2, 4, 8} on a CollaPois
// FEMNIST-like workload (full-population cohorts so the round loop is
// dominated by client training) and reports, per point:
//   - round_loop_ms:   sum of per-round wall-clock over the campaign;
//   - train_ms:        the client-training slice of it;
//   - clients_per_sec: mean trained-clients-per-second throughput;
//   - speedup:         that kernel set's T=1 round_loop_ms / this point's.
// The curve lands in BENCH_runtime_scaling.json (written to the working
// directory), including the headline end-to-end kernel-layer win:
// blocked vs naive train_ms at threads=1.
//
// Determinism is asserted, not assumed: within each kernel set, every
// point's final global model must be element-exact equal to that set's
// T=1 baseline (ordered reduction, DESIGN.md §7; fixed kernel reduction
// order, DESIGN.md §9); the bench aborts loudly otherwise. The two sets
// are NOT compared to each other — they round differently by design.
#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <thread>

#include "bench_common.h"
#include "kernels/kernels.h"
#include "runtime/thread_pool.h"

namespace {

using namespace collapois;

const std::vector<std::size_t>& thread_counts() {
  static const std::vector<std::size_t> t = {1, 2, 4, 8};
  return t;
}

const std::vector<kernels::KernelKind>& kernel_kinds() {
  static const std::vector<kernels::KernelKind> k = {
      kernels::KernelKind::naive, kernels::KernelKind::blocked};
  return k;
}

sim::ExperimentConfig workload() {
  sim::ExperimentConfig cfg = bench::base_config(sim::DatasetKind::femnist_like);
  cfg.attack = sim::AttackKind::collapois;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  // Scaling-bench shape: a modest population at full participation so
  // every round trains a full cohort (the dispatch the pool parallelizes)
  // rather than the q*N ~ 5 clients of the figure benches.
  cfg.n_clients = 24 * bench::scale();
  cfg.rounds = 12 * bench::scale();
  cfg.sample_prob = 1.0;
  cfg.attack_start_round = 4;
  return cfg;
}

struct Point {
  kernels::KernelKind kernels = kernels::KernelKind::blocked;
  std::size_t threads = 0;
  double round_loop_ms = 0.0;
  double train_ms = 0.0;
  double clients_per_sec = 0.0;
  double speedup = 1.0;
  bool bit_identical_to_t1 = true;
  // threads > hardware_concurrency: the point asks for more workers than
  // the machine has, so flat/negative scaling here is oversubscription,
  // not a pool regression. Marked in the table and the JSON so a 1-core
  // container's flat curve cannot be misread.
  bool oversubscribed = false;
};

// Keyed by (kernel kind, thread count).
using PointKey = std::pair<kernels::KernelKind, std::size_t>;

std::map<PointKey, Point>& points() {
  static std::map<PointKey, Point> p;
  return p;
}

// Per-kernel-set T=1 reference model for the determinism gate.
std::map<kernels::KernelKind, tensor::FlatVec>& baseline_globals() {
  static std::map<kernels::KernelKind, tensor::FlatVec> g;
  return g;
}

void run_point(benchmark::State& state, kernels::KernelKind kind,
               std::size_t threads) {
  sim::ExperimentConfig cfg = workload();
  cfg.kernels = kind;
  cfg.threads = threads;
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg);
    Point p;
    p.kernels = kind;
    p.threads = threads;
    p.oversubscribed = threads > std::thread::hardware_concurrency();
    double cps_sum = 0.0;
    for (const auto& rec : r.rounds) {
      p.round_loop_ms += rec.wall_ms;
      p.train_ms += rec.train_ms;
      cps_sum += rec.clients_per_sec;
    }
    p.clients_per_sec = r.rounds.empty()
                            ? 0.0
                            : cps_sum / static_cast<double>(r.rounds.size());
    auto& baselines = baseline_globals();
    if (threads == 1) {
      baselines[kind] = r.final_global;
    } else if (baselines.count(kind) != 0) {
      p.bit_identical_to_t1 = r.final_global == baselines[kind];
    }
    points()[{kind, threads}] = p;
    state.counters["round_loop_ms"] = p.round_loop_ms;
    state.counters["clients_per_sec"] = p.clients_per_sec;
    bench::report_counters(state, r);
  }
}

void register_all() {
  for (const auto kind : kernel_kinds()) {
    for (std::size_t t : thread_counts()) {
      const std::string name = std::string("runtime_scaling/kernels:") +
                               kernels::kernel_kind_name(kind) +
                               "/threads:" + std::to_string(t);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [kind, t](benchmark::State& s) { run_point(s, kind, t); })
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

void finalize() {
  auto& pts = points();
  if (pts.empty()) return;
  bool deterministic = true;
  for (auto& [key, p] : pts) {
    const auto t1 = pts.find({key.first, 1});
    const double base = t1 != pts.end() ? t1->second.round_loop_ms : 0.0;
    if (base > 0.0 && p.round_loop_ms > 0.0) p.speedup = base / p.round_loop_ms;
    deterministic = deterministic && p.bit_identical_to_t1;
  }

  std::cout << "== Runtime scaling — parallel round loop, CollaPois FEMNIST"
               "-like, full participation ==\n";
  std::cout << std::right << std::setw(9) << "kernels" << std::setw(9)
            << "threads" << std::setw(16) << "round_loop_ms" << std::setw(12)
            << "train_ms" << std::setw(16) << "clients_per_s" << std::setw(10)
            << "speedup" << "\n";
  for (const auto& [key, p] : pts) {
    std::cout << std::right << std::setw(9)
              << kernels::kernel_kind_name(p.kernels) << std::setw(9)
              << p.threads << std::fixed << std::setprecision(1)
              << std::setw(16) << p.round_loop_ms << std::setw(12)
              << p.train_ms << std::setw(16) << p.clients_per_sec
              << std::setprecision(2) << std::setw(10) << p.speedup
              << (p.oversubscribed ? "  [oversubscribed]" : "") << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  if (std::any_of(pts.begin(), pts.end(),
                  [](const auto& kv) { return kv.second.oversubscribed; })) {
    std::cout << "[oversubscribed] = threads > hardware_concurrency; flat "
                 "speedup there reflects the host, not the pool.\n";
  }
  // End-to-end kernel-layer win: blocked vs naive client training at T=1.
  double kernel_speedup_t1 = 0.0;
  const auto naive_t1 = pts.find({kernels::KernelKind::naive, 1});
  const auto blocked_t1 = pts.find({kernels::KernelKind::blocked, 1});
  if (naive_t1 != pts.end() && blocked_t1 != pts.end() &&
      blocked_t1->second.train_ms > 0.0) {
    kernel_speedup_t1 =
        naive_t1->second.train_ms / blocked_t1->second.train_ms;
    std::cout << "kernel_train_speedup_t1 (naive/blocked train_ms) = "
              << std::fixed << std::setprecision(2) << kernel_speedup_t1
              << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "hardware_concurrency=" << std::thread::hardware_concurrency()
            << "  deterministic_across_thread_counts="
            << (deterministic ? "yes" : "NO — ORDERED REDUCTION BROKEN")
            << "\n";

  std::ofstream out("BENCH_runtime_scaling.json");
  out << "{\"bench\": \"runtime_scaling\",\n"
      << " \"workload\": \"femnist/collapois q=1.0 clients="
      << workload().n_clients << " rounds=" << workload().rounds << "\",\n"
      << " \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n \"deterministic_across_thread_counts\": "
      << (deterministic ? "true" : "false")
      << ",\n \"kernel_train_speedup_t1\": " << kernel_speedup_t1
      << ",\n \"points\": [";
  bool first = true;
  for (const auto& [key, p] : pts) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"kernels\": \"" << kernels::kernel_kind_name(p.kernels)
        << "\", \"threads\": " << p.threads
        << ", \"round_loop_ms\": " << p.round_loop_ms
        << ", \"train_ms\": " << p.train_ms
        << ", \"clients_per_sec\": " << p.clients_per_sec
        << ", \"speedup\": " << p.speedup
        << ", \"oversubscribed\": " << (p.oversubscribed ? "true" : "false")
        << "}";
  }
  out << "\n]}\n";
  if (!deterministic) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  finalize();
  benchmark::Shutdown();
  return 0;
}
