// Fig. 3 — Average angles among client gradients as a function of alpha
// (FEMNIST): (a) benign clients scatter more as alpha shrinks while
// CollaPois compromised clients stay tightly aligned; (b) DPois
// compromised clients scatter like benign ones.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "metrics/telemetry.h"

namespace {

using namespace collapois;

struct AngleRow {
  double alpha;
  const char* attack;
  double benign_mean;
  double benign_std;
  double malicious_mean;
  double malicious_std;
};

std::vector<AngleRow>& rows() {
  static std::vector<AngleRow> r;
  return r;
}

void run_point(benchmark::State& state, sim::AttackKind attack,
               double alpha) {
  sim::ExperimentConfig cfg =
      bench::base_config(sim::DatasetKind::femnist_like);
  cfg.attack = attack;
  cfg.alpha = alpha;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  // Angle statistics only need the early/mid campaign; shorten the run
  // and raise the participation rate so rounds contain enough updates for
  // pairwise angles.
  cfg.rounds = 60 * bench::scale();
  cfg.sample_prob = 0.15;
  sim::RunOptions opt;
  opt.keep_telemetry = true;
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg, opt);
    metrics::AngleAccumulator acc;
    for (const auto& t : r.telemetry) acc.add(t);
    rows().push_back({alpha, sim::attack_name(attack), acc.benign().mean(),
                      acc.benign().stddev(), acc.malicious().mean(),
                      acc.malicious().stddev()});
    state.counters["benign_angle"] = acc.benign().mean();
    state.counters["malicious_angle"] = acc.malicious().mean();
  }
}

void register_all() {
  for (sim::AttackKind attack :
       {sim::AttackKind::collapois, sim::AttackKind::dpois}) {
    for (double alpha : {0.01, 1.0, 100.0}) {
      const std::string name = std::string("fig03/") +
                               sim::attack_name(attack) + "/alpha" +
                               std::to_string(alpha);
      benchmark::RegisterBenchmark(
          name.c_str(), [attack, alpha](benchmark::State& s) {
            run_point(s, attack, alpha);
          })
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

void print_table() {
  std::cout << "== Fig. 3 — pairwise gradient angles (radians) vs alpha "
               "(FEMNIST-like) ==\n";
  std::cout << std::left << std::setw(12) << "attack" << std::right
            << std::setw(8) << "alpha" << std::setw(14) << "benign_mean"
            << std::setw(12) << "benign_sd" << std::setw(14) << "mal_mean"
            << std::setw(12) << "mal_sd" << "\n";
  for (const auto& r : rows()) {
    std::cout << std::left << std::setw(12) << r.attack << std::right
              << std::setw(8) << r.alpha << std::fixed << std::setprecision(4)
              << std::setw(14) << r.benign_mean << std::setw(12)
              << r.benign_std << std::setw(14) << r.malicious_mean
              << std::setw(12) << r.malicious_std << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "(expected shape: benign angles grow as alpha -> 0; CollaPois "
               "malicious angles stay near 0; DPois malicious angles track "
               "the benign scatter)\n";
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  benchmark::Shutdown();
  return 0;
}
