// Fault tolerance — attack efficacy under production conditions: CollaPois
// vs D-Pois with 0% / 10% / 30% client dropout, with and without a
// straggler regime (20% stragglers, 2-round staleness, damped weights).
// Reports Benign AC / Attack SR plus the engine's fault accounting
// (dropped, quarantined, stale, skipped rounds) — the question is whether
// CollaPois's shared-trojan pull survives churn that starves per-round
// participation.
#include <iomanip>
#include <iostream>
#include <map>

#include "bench_common.h"

namespace {

using namespace collapois;

struct Regime {
  std::string label;
  double dropout;
  double straggler;
};

const std::vector<Regime>& regimes() {
  static const std::vector<Regime> r = {
      {"drop0", 0.0, 0.0},          {"drop10", 0.10, 0.0},
      {"drop30", 0.30, 0.0},        {"drop10+strag", 0.10, 0.20},
      {"drop30+strag", 0.30, 0.20},
  };
  return r;
}

struct Row {
  double benign_ac = 0.0;
  double attack_sr = 0.0;
  std::size_t dropped = 0;
  std::size_t rejected = 0;
  std::size_t stale = 0;
  std::size_t skipped_rounds = 0;
};

std::map<std::string, Row>& table() {
  static std::map<std::string, Row> t;
  return t;
}

void run_point(benchmark::State& state, sim::AttackKind attack,
               const Regime& regime) {
  sim::ExperimentConfig cfg =
      bench::base_config(sim::DatasetKind::sentiment_like);
  cfg.attack = attack;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  cfg.faults.dropout_prob = regime.dropout;
  cfg.faults.straggler_prob = regime.straggler;
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg);
    Row row{r.population.benign_ac, r.population.attack_sr, 0, 0, 0, 0};
    for (const auto& rec : r.rounds) {
      row.dropped += rec.n_dropped;
      row.rejected += rec.n_rejected;
      row.stale += rec.n_stragglers;
      row.skipped_rounds += rec.aggregate_skipped ? 1 : 0;
    }
    table()[std::string(sim::attack_name(attack)) + "/" + regime.label] = row;
    bench::report_counters(state, r);
    state.counters["dropped"] = static_cast<double>(row.dropped);
    state.counters["skipped_rounds"] =
        static_cast<double>(row.skipped_rounds);
  }
}

void register_all() {
  for (sim::AttackKind attack :
       {sim::AttackKind::collapois, sim::AttackKind::dpois}) {
    for (const Regime& regime : regimes()) {
      const std::string name = std::string("fault_tolerance/") +
                               sim::attack_name(attack) + "/" + regime.label;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [attack, &regime](benchmark::State& s) {
            run_point(s, attack, regime);
          })
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

void print_table() {
  std::cout << "== Fault tolerance — CollaPois vs D-Pois under dropout / "
               "straggler regimes (Sentiment, 1% compromised) ==\n";
  std::cout << std::right << std::setw(24) << "attack/regime"
            << std::setw(12) << "benign_ac" << std::setw(12) << "attack_sr"
            << std::setw(10) << "dropped" << std::setw(10) << "rejected"
            << std::setw(8) << "stale" << std::setw(10) << "skipped"
            << "\n";
  for (const auto& [label, row] : table()) {
    std::cout << std::right << std::setw(24) << label << std::fixed
              << std::setprecision(4) << std::setw(12) << row.benign_ac
              << std::setw(12) << row.attack_sr;
    std::cout.unsetf(std::ios::fixed);
    std::cout << std::setw(10) << row.dropped << std::setw(10)
              << row.rejected << std::setw(8) << row.stale << std::setw(10)
              << row.skipped_rounds << "\n";
  }
  std::cout << "(expected: CollaPois's shared-X pull degrades gracefully "
               "with dropout — each surviving compromised client still "
               "pulls toward the same X — while D-Pois's per-round poison "
               "mass shrinks with participation)\n";
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  benchmark::Shutdown();
  return 0;
}
