// Section II-B claim check: "warping techniques enable Trojans to evade
// commonly used detection methods like Neural Cleanse, Fine-Pruning, and
// STRIP". Two centrally-trained Trojaned models — one with the WaNet-
// style warp trigger, one with a BadNets-style patch — are put through
// all three inference-time detectors. The patch backdoor should be
// caught; the warp backdoor should slip through.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "core/trojan_trainer.h"
#include "data/synthetic_image.h"
#include "defense/inference_detect.h"
#include "nn/eval.h"
#include "nn/zoo.h"
#include "trojan/patch_trigger.h"
#include "trojan/poison.h"
#include "trojan/warp_trigger.h"

namespace {

using namespace collapois;

struct Row {
  std::string trigger;
  double clean_ac;
  double attack_sr;
  double strip_detection;
  double strip_entropy_gap;
  double prune16_sr;       // backdoor survival after pruning 16/32 units
  double prune16_ac;
  double nc_anomaly;
  int nc_flagged;
};

std::vector<Row>& rows() {
  static std::vector<Row> r;
  return r;
}

void run_point(benchmark::State& state, const std::string& name,
               const trojan::Trigger& trigger, bool poison) {
  stats::Rng rng(55);
  data::SyntheticImageGenerator gen({}, 56);
  std::vector<std::size_t> counts(10, 40);
  const data::Dataset train = gen.generate(counts, rng);
  std::vector<std::size_t> eval_counts(10, 15);
  const data::Dataset clean_eval = gen.generate(eval_counts, rng);
  const data::Dataset trojan_eval =
      trojan::apply_trigger_all(clean_eval, trigger, 0);

  nn::Model m = nn::make_lenet_small({});
  m.init(rng);
  core::TrojanTrainConfig tcfg;
  if (!poison) tcfg.poison_fraction = 0.0;  // clean-model control
  const auto trained =
      core::train_trojaned_model(std::move(m), train, trigger, tcfg, rng);
  nn::Model model = nn::make_lenet_small({});
  model.set_parameters(trained.x);

  for (auto _ : state) {
    Row row;
    row.trigger = name;
    row.clean_ac = nn::accuracy(model, clean_eval);
    row.attack_sr = nn::accuracy(model, trojan_eval);

    const defense::StripReport strip = defense::strip_evaluate(
        model, clean_eval, trojan_eval, train, {}, rng);
    row.strip_detection = strip.detection_rate;
    row.strip_entropy_gap =
        strip.clean_entropy_mean - strip.trojan_entropy_mean;

    const auto sweep = defense::fine_prune_sweep(
        model, clean_eval, clean_eval, trojan_eval, {16});
    row.prune16_sr = sweep[0].attack_sr;
    row.prune16_ac = sweep[0].clean_accuracy;

    const defense::CleanseReport nc =
        defense::neural_cleanse(model, clean_eval, {}, rng);
    row.nc_anomaly = nc.anomaly_index;
    row.nc_flagged = nc.flagged_class;

    rows().push_back(row);
    state.counters["strip_detection"] = row.strip_detection;
    state.counters["nc_anomaly"] = row.nc_anomaly;
  }
}

void register_all() {
  static const trojan::WarpTrigger warp({}, 57);
  static const trojan::PatchTrigger patch =
      trojan::PatchTrigger::global_dba(16, 16);
  benchmark::RegisterBenchmark(
      "inference_defense/clean_control",
      [](benchmark::State& s) {
        // Un-poisoned model, probed with the warp trigger: the detectors'
        // false-alarm baseline on this substrate.
        run_point(s, "none (control)", warp, false);
      })
      ->Iterations(1)
      ->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark(
      "inference_defense/warp",
      [](benchmark::State& s) { run_point(s, "warp (WaNet)", warp, true); })
      ->Iterations(1)
      ->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark(
      "inference_defense/patch",
      [](benchmark::State& s) {
        run_point(s, "patch (BadNets)", patch, true);
      })
      ->Iterations(1)
      ->Unit(benchmark::kSecond);
}

void print_table() {
  std::cout << "== Inference-time detection: warp vs patch backdoors ==\n";
  std::cout << std::left << std::setw(18) << "trigger" << std::right
            << std::setw(9) << "ac" << std::setw(9) << "sr" << std::setw(12)
            << "STRIP_det" << std::setw(12) << "STRIP_gap" << std::setw(12)
            << "prune16_sr" << std::setw(12) << "NC_anomaly" << std::setw(9)
            << "NC_cls" << "\n";
  for (const auto& r : rows()) {
    std::cout << std::left << std::setw(18) << r.trigger << std::right
              << std::fixed << std::setprecision(3) << std::setw(9)
              << r.clean_ac << std::setw(9) << r.attack_sr << std::setw(12)
              << r.strip_detection << std::setw(12) << r.strip_entropy_gap
              << std::setw(12) << r.prune16_sr << std::setw(12)
              << r.nc_anomaly << std::setw(9) << r.nc_flagged << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout
      << "(the cited WaNet claim is that the warp trigger evades all three "
         "while the patch is caught. Measured at this 16x16 synthetic "
         "scale: STRIP's clean baseline is 0 and it flags BOTH backdoors — "
         "blending does not destroy the warp signature on smooth prototype "
         "images the way it does on natural images; Neural Cleanse's "
         "anomaly index is unreliable here (the clean control also scores "
         "above the 2.0 threshold). The warp-evasion property is an "
         "artifact of high-dimensional natural-image statistics that this "
         "substrate intentionally does not model — see EXPERIMENTS.md.)\n";
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  benchmark::Shutdown();
  return 0;
}
