// Fig. 11 — the per-client scatter of (Benign AC, Attack SR) for all
// clients under FedAvg + DP on FEMNIST: the population hides a spectrum
// of infection levels. Printed as a 2-D histogram over (AC, SR) deciles
// plus the risk-cluster assignment counts.
#include <iomanip>
#include <iostream>

#include "bench_common.h"

namespace {

using namespace collapois;

sim::ExperimentResult& result() {
  static sim::ExperimentResult r;
  return r;
}

void campaign(benchmark::State& state) {
  sim::ExperimentConfig cfg =
      bench::base_config(sim::DatasetKind::femnist_like);
  cfg.attack = sim::AttackKind::collapois;
  cfg.defense = defense::DefenseKind::dp;
  cfg.alpha = 0.1;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  for (auto _ : state) {
    result() = sim::run_experiment(cfg);
    bench::report_counters(state, result());
  }
}
BENCHMARK(campaign)->Iterations(1)->Unit(benchmark::kSecond);

void print_tables() {
  const auto& r = result();
  if (r.final_evals.empty()) return;

  // 2-D histogram over (benign AC, attack SR) in 0.2-wide buckets.
  int hist[5][5] = {};
  for (const auto& e : r.final_evals) {
    if (e.compromised || !e.has_test_data) continue;
    const int i = std::min(4, static_cast<int>(e.benign_ac * 5.0));
    const int j = std::min(4, static_cast<int>(e.attack_sr * 5.0));
    ++hist[i][j];
  }
  std::cout << "== Fig. 11 — client distribution over (Benign AC, Attack "
               "SR), FedAvg+DP, FEMNIST ==\n";
  std::cout << "rows: Benign AC buckets (low->high); cols: Attack SR "
               "buckets (low->high); cells: #clients\n";
  std::cout << std::setw(10) << "AC\\SR";
  for (int j = 0; j < 5; ++j) {
    std::cout << std::setw(8) << (j * 0.2);
  }
  std::cout << "\n";
  for (int i = 0; i < 5; ++i) {
    std::cout << std::setw(10) << std::fixed << std::setprecision(1)
              << (i * 0.2);
    std::cout.unsetf(std::ios::fixed);
    for (int j = 0; j < 5; ++j) std::cout << std::setw(8) << hist[i][j];
    std::cout << "\n";
  }

  sim::print_clusters(std::cout, "risk-cluster assignment (Eq. 8 ranking)",
                      r.clusters);
  std::cout << "(paper shape: a wide spread of Attack SR at similar Benign "
               "AC — the average masks an infected tail)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_tables();
  benchmark::Shutdown();
  return 0;
}
