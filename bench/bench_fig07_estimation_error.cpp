// Fig. 7 — The server's estimation error ||X' - X|| over training rounds
// under tau-upscaling (tau = 2), for several numbers of compromised
// clients, at full detection precision p = 1 (FEMNIST). Also verifies the
// Theorem 2 distance bound on every post-strike round.
//
// The server's best estimate of X from detected compromised updates is
// X' = theta^t - mean(delta_c) (it cannot divide by the secret psi).
// Hence ||X' - X|| = ||(theta^t - X) - mean(delta_c)||, which is bounded
// below by | ||theta^t - X|| - ||mean(delta_c)|| |; with tau-upscaling the
// update norm never collapses, keeping that floor away from zero.
#include <cmath>
#include <iomanip>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/theory.h"
#include "metrics/telemetry.h"
#include "stats/geometry.h"

namespace {

using namespace collapois;

struct Row {
  std::size_t n_compromised;
  std::size_t round_bucket;  // round / 40
  double estimation_error;
  double distance_to_x;
};

std::vector<Row>& rows() {
  static std::vector<Row> r;
  return r;
}

int& theorem2_violations() {
  static int v = 0;
  return v;
}

void run_point(benchmark::State& state, double fraction) {
  sim::ExperimentConfig cfg =
      bench::base_config(sim::DatasetKind::femnist_like);
  cfg.attack = sim::AttackKind::collapois;
  cfg.compromised_fraction = fraction;
  cfg.alpha = 0.1;
  cfg.collapois.tau = 2.0;  // the tau floor of Theorem 3 / Fig. 7
  cfg.sample_prob = 0.15;
  sim::RunOptions opt;
  opt.keep_telemetry = true;

  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg, opt);
    double last_error = 0.0;
    for (std::size_t t = 0; t < r.telemetry.size(); ++t) {
      const auto split = metrics::split_updates(r.telemetry[t]);
      if (split.malicious.empty() || r.rounds[t].distance_to_x <= 0.0) {
        continue;
      }
      const double mean_delta_norm = stats::l2_norm(
          tensor::mean_of(split.malicious));
      const double dist = r.rounds[t].distance_to_x;
      // Lower bound on ||X' - X|| (see header comment).
      const double err = std::fabs(dist - mean_delta_norm);
      last_error = err;
      rows().push_back({r.compromised_ids.size(), t / 40, err, dist});

      // Theorem 2: ||theta - X|| <= (1/a - 1)||delta_c|| + ||zeta||. The
      // residual zeta covers the benign aggregate's displacement; bound it
      // by the sum of benign update norms of the round.
      double zeta = 0.0;
      for (const auto& b : split.benign) zeta += stats::l2_norm(b);
      const double delta_norm = stats::l2_norm(split.malicious[0]);
      const double bound = core::theory::theorem2_distance_bound(
          cfg.collapois.psi_a, delta_norm / cfg.collapois.psi_a, zeta);
      // delta = psi (theta - X) => ||theta - X|| = ||delta|| / psi <=
      // ||delta|| / a; the bound statement must not be violated by more
      // than the residual.
      if (dist > bound + delta_norm / cfg.collapois.psi_a + 1e-3) {
        ++theorem2_violations();
      }
    }
    state.counters["final_error"] = last_error;
    state.counters["attack_sr"] = r.population.attack_sr;
  }
}

void register_all() {
  for (const char* level : {"0.1%", "0.5%", "1%"}) {
    const std::string name = std::string("fig07/c") + level;
    const double frac = bench::paper_fraction(level);
    benchmark::RegisterBenchmark(
        name.c_str(), [frac](benchmark::State& s) { run_point(s, frac); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

void print_table() {
  std::cout << "== Fig. 7 — server estimation error of X over rounds "
               "(tau = 2, p = 1) ==\n";
  std::cout << std::right << std::setw(8) << "|C|" << std::setw(14)
            << "round>=" << std::setw(14) << "est_error" << std::setw(14)
            << "||theta-X||" << "\n";
  std::map<std::pair<std::size_t, std::size_t>, std::pair<double, int>> err;
  std::map<std::pair<std::size_t, std::size_t>, double> dist;
  for (const auto& r : rows()) {
    const auto key = std::make_pair(r.n_compromised, r.round_bucket);
    err[key].first += r.estimation_error;
    err[key].second += 1;
    dist[key] += r.distance_to_x;
  }
  for (const auto& [key, val] : err) {
    std::cout << std::right << std::setw(8) << key.first << std::setw(14)
              << key.second * 40 << std::fixed << std::setprecision(4)
              << std::setw(14) << val.first / val.second << std::setw(14)
              << dist[key] / val.second << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "Theorem 2 bound violations observed: "
            << theorem2_violations() << "\n";
  std::cout << "(paper shape: the error stabilises at a tau-controlled floor "
               "instead of decaying to zero)\n";
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  benchmark::Shutdown();
  return 0;
}
