// Run-to-run variance — the paper reports each experiment repeated 5
// times with small variance (0.01%-0.03% of the metric). This bench runs
// the core CollaPois-vs-FedAvg experiment over 5 seeds on both substrates
// and reports mean and standard deviation of Benign AC / Attack SR.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "stats/summary.h"

namespace {

using namespace collapois;

struct Row {
  std::string dataset;
  double ac_mean, ac_sd;
  double sr_mean, sr_sd;
};

std::vector<Row>& rows() {
  static std::vector<Row> r;
  return r;
}

void run_point(benchmark::State& state, sim::DatasetKind dataset) {
  sim::ExperimentConfig cfg = bench::base_config(dataset);
  cfg.attack = sim::AttackKind::collapois;
  cfg.alpha = 0.1;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  for (auto _ : state) {
    stats::RunningStats ac, sr;
    for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
      cfg.seed = seed;
      const sim::ExperimentResult r = sim::run_experiment(cfg);
      ac.add(r.population.benign_ac);
      sr.add(r.population.attack_sr);
    }
    rows().push_back({sim::dataset_name(dataset), ac.mean(), ac.stddev(),
                      sr.mean(), sr.stddev()});
    state.counters["sr_mean"] = sr.mean();
    state.counters["sr_sd"] = sr.stddev();
  }
}

void register_all() {
  for (sim::DatasetKind dataset :
       {sim::DatasetKind::sentiment_like, sim::DatasetKind::femnist_like}) {
    const std::string name =
        std::string("variance/") + sim::dataset_name(dataset);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [dataset](benchmark::State& s) { run_point(s, dataset); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

void print_table() {
  std::cout << "== Run-to-run variance over 5 seeds (CollaPois, FedAvg, "
               "alpha=0.1, 1% compromised) ==\n";
  std::cout << std::left << std::setw(12) << "dataset" << std::right
            << std::setw(10) << "ac_mean" << std::setw(10) << "ac_sd"
            << std::setw(10) << "sr_mean" << std::setw(10) << "sr_sd"
            << "\n";
  for (const auto& r : rows()) {
    std::cout << std::left << std::setw(12) << r.dataset << std::right
              << std::fixed << std::setprecision(4) << std::setw(10)
              << r.ac_mean << std::setw(10) << r.ac_sd << std::setw(10)
              << r.sr_mean << std::setw(10) << r.sr_sd << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "(the simulator's federation is ~30x smaller than the "
               "paper's, so its seed variance is proportionally larger "
               "than the 0.01-0.03% the paper reports)\n";
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  benchmark::Shutdown();
  return 0;
}
