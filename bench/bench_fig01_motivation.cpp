// Fig. 1 — Motivation: existing DPois and MRepl attacks show only modest
// changes between 0.1% and 1% compromised clients across non-IID levels
// (alpha in [0.01, 100]) on the Sentiment dataset.
//
// Series: attack x compromised-level x alpha -> (Benign AC, Attack SR).
#include "bench_common.h"

namespace {

using namespace collapois;
using bench::SeriesTable;

SeriesTable& table() {
  static SeriesTable t("Fig. 1 — DPois/MRepl Attack SR vs alpha (Sentiment)");
  return t;
}

void run_point(benchmark::State& state, sim::AttackKind attack,
               const std::string& level, double alpha) {
  sim::ExperimentConfig cfg = bench::base_config(sim::DatasetKind::sentiment_like);
  cfg.attack = attack;
  cfg.compromised_fraction = bench::paper_fraction(level);
  cfg.alpha = alpha;
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg);
    bench::report_counters(state, r);
    table().add(std::string(sim::attack_name(attack)) + " c=" + level +
                    " a=" + std::to_string(alpha),
                r.population.benign_ac, r.population.attack_sr);
  }
}

void register_all() {
  for (sim::AttackKind attack :
       {sim::AttackKind::dpois, sim::AttackKind::mrepl}) {
    for (const char* level : {"0.1%", "1%"}) {
      for (double alpha : {0.01, 0.1, 1.0, 10.0, 100.0}) {
        std::string name = std::string("fig01/") + sim::attack_name(attack) +
                           "/c" + level + "/alpha" + std::to_string(alpha);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [attack, level = std::string(level), alpha](
                benchmark::State& s) { run_point(s, attack, level, alpha); })
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
