// Fig. 12 — why some clients are more vulnerable: the cosine similarity
// (Eq. 9) between each risk cluster's cumulative label distribution and
// the attacker's auxiliary data D_a predicts the cluster's Attack SR,
// on both datasets.
#include <iomanip>
#include <iostream>

#include "bench_common.h"

namespace {

using namespace collapois;

struct ClusterRow {
  std::string dataset;
  std::string cluster;
  double cs;
  double attack_sr;
  double benign_ac;
};

std::vector<ClusterRow>& rows() {
  static std::vector<ClusterRow> r;
  return r;
}

void run_point(benchmark::State& state, sim::DatasetKind dataset) {
  sim::ExperimentConfig cfg = bench::base_config(dataset);
  cfg.attack = sim::AttackKind::collapois;
  cfg.alpha = 0.1;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg);
    for (const auto& c : r.clusters) {
      rows().push_back({sim::dataset_name(dataset), c.name, c.label_cosine,
                        c.mean_attack_sr, c.mean_benign_ac});
    }
    bench::report_counters(state, r);
  }
}

void register_all() {
  for (sim::DatasetKind dataset :
       {sim::DatasetKind::femnist_like, sim::DatasetKind::sentiment_like}) {
    const std::string name =
        std::string("fig12/") + sim::dataset_name(dataset);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [dataset](benchmark::State& s) { run_point(s, dataset); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

void print_table() {
  std::cout << "== Fig. 12 — label-distribution proximity (CS_k, Eq. 9) vs "
               "cluster Attack SR ==\n";
  std::cout << std::left << std::setw(12) << "dataset" << std::setw(12)
            << "cluster" << std::right << std::setw(10) << "CS_k"
            << std::setw(12) << "attack_sr" << std::setw(12) << "benign_ac"
            << "\n";
  for (const auto& r : rows()) {
    std::cout << std::left << std::setw(12) << r.dataset << std::setw(12)
              << r.cluster << std::right << std::fixed << std::setprecision(4)
              << std::setw(10) << r.cs << std::setw(12) << r.attack_sr
              << std::setw(12) << r.benign_ac << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "(paper shape: clusters whose label distributions align with "
               "D_a — higher CS_k — show higher Attack SR; the gradient of "
               "CS across clusters is flatter on Sentiment)\n";
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  benchmark::Shutdown();
  return 0;
}
