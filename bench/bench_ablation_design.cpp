// Ablation of CollaPois's design choices (DESIGN.md §4): what each knob
// of the attack buys, measured on the FEMNIST-like substrate at alpha=0.1
// with the 1%-analogue compromised fraction.
//
//   psi range  — the dynamic learning rate's support [a, b]: narrow-high
//                ranges pull hardest; wide/low ranges trade speed for
//                randomness (stealth).
//   strike     — attack_start_round: striking near convergence keeps X in
//                the model's loss valley (cf. Theorem 2's regime).
//   tau        — the update-norm floor preserving Theorem 3's estimation-
//                error lower bound; should not change Attack SR.
//   clip       — the shared magnitude bound A blending malicious updates
//                into the benign envelope; costs pull strength.
#include "bench_common.h"

namespace {

using namespace collapois;
using bench::SeriesTable;

SeriesTable& table() {
  static SeriesTable t("Ablation — CollaPois design choices (FEMNIST)");
  return t;
}

sim::ExperimentConfig base() {
  sim::ExperimentConfig cfg =
      bench::base_config(sim::DatasetKind::femnist_like);
  cfg.attack = sim::AttackKind::collapois;
  cfg.alpha = 0.1;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  return cfg;
}

void run_labeled(benchmark::State& state, const std::string& label,
                 const sim::ExperimentConfig& cfg) {
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg);
    bench::report_counters(state, r);
    table().add(label, r.population.benign_ac, r.population.attack_sr);
  }
}

void register_all() {
  // psi ranges.
  for (auto [a, b] : {std::pair{0.5, 0.6}, std::pair{0.9, 1.0},
                      std::pair{0.95, 0.99}}) {
    sim::ExperimentConfig cfg = base();
    cfg.collapois.psi_a = a;
    cfg.collapois.psi_b = b;
    const std::string label =
        "psi U[" + std::to_string(a) + "," + std::to_string(b) + "]";
    benchmark::RegisterBenchmark(
        ("ablation/" + label).c_str(),
        [label, cfg](benchmark::State& s) { run_labeled(s, label, cfg); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  // Strike round.
  for (std::size_t strike : {0UL, 20UL, 80UL}) {
    sim::ExperimentConfig cfg = base();
    cfg.attack_start_round = strike;
    const std::string label = "strike at round " + std::to_string(strike);
    benchmark::RegisterBenchmark(
        ("ablation/" + label).c_str(),
        [label, cfg](benchmark::State& s) { run_labeled(s, label, cfg); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  // tau floor.
  for (double tau : {0.0, 2.0}) {
    sim::ExperimentConfig cfg = base();
    cfg.collapois.tau = tau;
    const std::string label = "tau = " + std::to_string(tau);
    benchmark::RegisterBenchmark(
        ("ablation/" + label).c_str(),
        [label, cfg](benchmark::State& s) { run_labeled(s, label, cfg); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  // Stealth clip bound A.
  for (double clip : {0.0, 0.5, 2.0}) {
    sim::ExperimentConfig cfg = base();
    cfg.collapois.clip = clip;
    const std::string label =
        clip == 0.0 ? "clip off" : "clip A = " + std::to_string(clip);
    benchmark::RegisterBenchmark(
        ("ablation/" + label).c_str(),
        [label, cfg](benchmark::State& s) { run_labeled(s, label, cfg); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
