// Cross-device scale-out — CollaPois vs a coordinate defense at
// production sampling ratios (DESIGN.md §12).
//
// Sweeps the registered population N over {10^3, 10^4, 10^5} with a
// fixed round cohort of ~512 sampled clients (q = 512/N, the paper's
// cross-device regime where q*N << N), running the lazy population
// behind a 4-shard aggregation tree. Per point it reports:
//   - peak_rss_bytes:  process high-water mark (runtime::peak_rss_bytes),
//                      reset per point via reset_peak_rss when the
//                      kernel allows it (else points run in ascending-N
//                      order and the monotone peaks still bound growth);
//   - materialized:    distinct clients ever instantiated — the lazy
//                      population's working set;
//   - rounds_per_sec:  campaign throughput.
//
// Three gates make the scale-out claims executable (exit 1 on failure):
//   1. shard_eq_flat — at N=10^3 the sharded run's final global model is
//      bit-identical to the flat (--shards 1) run;
//   2. rss_budget — peak RSS at N=10^5 stays under an absolute budget;
//   3. rss_sublinear — peak RSS grows by far less than the 100x
//      population growth (the lazy working set is O(cohort), not O(N)).
// The curve lands in BENCH_scale_out.json in the working directory.
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.h"
#include "runtime/rss.h"

namespace {

using namespace collapois;

constexpr std::size_t kCohortTarget = 512;
constexpr std::size_t kShards = 4;
// Absolute peak-RSS budget for the 10^5-client point. The working set is
// the ~512-client cohort plus the handful of materialized attackers —
// measured ~10^2 MB; the budget leaves headroom without ever admitting
// an O(N) population.
constexpr std::size_t kRssBudgetBytes = 1536ull << 20;  // 1.5 GiB
// Peak RSS may grow with N (bigger sampling bitmaps, more distinct
// clients touched across rounds) but must stay far under the 100x
// population growth between the first and last point.
constexpr double kMaxRssGrowth = 10.0;

const std::vector<std::size_t>& populations() {
  static const std::vector<std::size_t> n = {1'000, 10'000, 100'000};
  return n;
}

sim::ExperimentConfig workload(std::size_t population) {
  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::sentiment_like;
  cfg.attack = sim::AttackKind::collapois;
  cfg.defense = defense::DefenseKind::trimmed_mean;
  cfg.n_clients = population;
  cfg.samples_per_client = 16;
  // Production sampling ratio: a fixed ~512-client cohort regardless of
  // the registered population (q = 512/N), the paper's cross-device shape.
  cfg.sample_prob =
      std::min(1.0, static_cast<double>(kCohortTarget) /
                        static_cast<double>(population));
  // The paper's 0.1% compromise level; under lazy_clients the arming
  // phase materializes exactly this set for the auxiliary pool.
  cfg.compromised_fraction = 0.001;
  cfg.rounds = 3 * bench::scale();
  cfg.attack_start_round = 1;
  cfg.lazy_clients = true;
  cfg.shards = kShards;
  cfg.threads = 4;
  cfg.eval_max_clients = 64;
  cfg.seed = 1234;
  return cfg;
}

struct Point {
  std::size_t population = 0;
  std::size_t cohort = 0;
  std::size_t peak_rss_bytes = 0;
  std::size_t materialized = 0;
  double rounds_per_sec = 0.0;
  double benign_ac = 0.0;
  double attack_sr = 0.0;
};

std::map<std::size_t, Point>& points() {
  static std::map<std::size_t, Point> p;
  return p;
}

bool& shard_eq_flat() {
  static bool ok = true;
  return ok;
}

bool& rss_resettable() {
  static bool ok = true;
  return ok;
}

void run_point(benchmark::State& state, std::size_t population) {
  sim::ExperimentConfig cfg = workload(population);
  for (auto _ : state) {
    // Per-point peak when the kernel lets us clear the watermark; the
    // ascending-N registration order keeps the monotone fallback sound.
    rss_resettable() = runtime::reset_peak_rss() && rss_resettable();
    const sim::ExperimentResult r = sim::run_experiment(cfg);

    Point p;
    p.population = population;
    p.cohort = static_cast<std::size_t>(
        cfg.sample_prob * static_cast<double>(population) + 0.5);
    double wall_ms = 0.0;
    for (const auto& rec : r.rounds) {
      wall_ms += rec.wall_ms;
      p.peak_rss_bytes = std::max(p.peak_rss_bytes, rec.peak_rss_bytes);
      p.materialized = std::max(p.materialized, rec.n_materialized);
    }
    p.rounds_per_sec = wall_ms > 0.0
                           ? static_cast<double>(r.rounds.size()) * 1000.0 /
                                 wall_ms
                           : 0.0;
    p.benign_ac = r.population.benign_ac;
    p.attack_sr = r.population.attack_sr;
    points()[population] = p;

    // Gate 1 at the smallest point: the shard tree must be invisible in
    // the result — bit-identical final global vs the flat path.
    if (population == populations().front()) {
      sim::ExperimentConfig flat = cfg;
      flat.shards = 1;
      const sim::ExperimentResult f = sim::run_experiment(flat);
      shard_eq_flat() =
          f.final_global.size() == r.final_global.size() &&
          std::memcmp(f.final_global.data(), r.final_global.data(),
                      f.final_global.size() * sizeof(float)) == 0;
    }

    state.counters["peak_rss_mb"] =
        static_cast<double>(p.peak_rss_bytes) / (1024.0 * 1024.0);
    state.counters["materialized"] = static_cast<double>(p.materialized);
    state.counters["rounds_per_sec"] = p.rounds_per_sec;
    bench::report_counters(state, r);
  }
}

void register_all() {
  for (std::size_t n : populations()) {
    const std::string name =
        "scale_out/population:" + std::to_string(n) + "/shards:" +
        std::to_string(kShards);
    benchmark::RegisterBenchmark(
        name.c_str(), [n](benchmark::State& s) { run_point(s, n); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

void finalize() {
  auto& pts = points();
  if (pts.empty()) return;

  std::cout << "== Scale-out — lazy population behind a " << kShards
            << "-shard tree, CollaPois vs trimmed-mean, cohort ~"
            << kCohortTarget << " ==\n";
  std::cout << std::right << std::setw(12) << "population" << std::setw(9)
            << "cohort" << std::setw(14) << "peak_rss_mb" << std::setw(14)
            << "materialized" << std::setw(13) << "rounds_per_s"
            << std::setw(12) << "benign_ac" << std::setw(12) << "attack_sr"
            << "\n";
  for (const auto& [n, p] : pts) {
    std::cout << std::right << std::setw(12) << p.population << std::setw(9)
              << p.cohort << std::fixed << std::setprecision(1)
              << std::setw(14)
              << static_cast<double>(p.peak_rss_bytes) / (1024.0 * 1024.0)
              << std::setprecision(0) << std::setw(14)
              << static_cast<double>(p.materialized) << std::setprecision(2)
              << std::setw(13) << p.rounds_per_sec << std::setprecision(4)
              << std::setw(12) << p.benign_ac << std::setw(12) << p.attack_sr
              << "\n";
    std::cout.unsetf(std::ios::fixed);
  }

  const Point& first = pts.begin()->second;
  const Point& last = pts.rbegin()->second;
  const bool rss_known = first.peak_rss_bytes > 0 && last.peak_rss_bytes > 0;
  const double growth =
      rss_known ? static_cast<double>(last.peak_rss_bytes) /
                      static_cast<double>(first.peak_rss_bytes)
                : 0.0;
  const bool budget_ok = !rss_known || last.peak_rss_bytes <= kRssBudgetBytes;
  const bool sublinear_ok = !rss_known || growth <= kMaxRssGrowth;
  std::cout << "shard_eq_flat=" << (shard_eq_flat() ? "yes" : "NO")
            << "  rss_budget=" << (budget_ok ? "ok" : "EXCEEDED")
            << "  rss_growth_" << first.population << "_to_"
            << last.population << "=" << std::fixed << std::setprecision(2)
            << growth << "x (limit " << kMaxRssGrowth << "x, population 100x)"
            << "  per_point_peaks="
            << (rss_resettable() ? "reset" : "monotone-fallback") << "\n";
  std::cout.unsetf(std::ios::fixed);

  std::ofstream out("BENCH_scale_out.json");
  out << "{\"bench\": \"scale_out\",\n"
      << " \"workload\": \"sentiment/collapois/trimmedmean cohort~"
      << kCohortTarget << " shards=" << kShards << " lazy=true rounds="
      << workload(populations().front()).rounds << "\",\n"
      << " \"shard_eq_flat\": " << (shard_eq_flat() ? "true" : "false")
      << ",\n \"rss_budget_bytes\": " << kRssBudgetBytes
      << ",\n \"rss_budget_ok\": " << (budget_ok ? "true" : "false")
      << ",\n \"rss_growth\": " << growth
      << ",\n \"rss_growth_limit\": " << kMaxRssGrowth
      << ",\n \"per_point_peaks\": \""
      << (rss_resettable() ? "reset" : "monotone-fallback")
      << "\",\n \"points\": [";
  bool first_row = true;
  for (const auto& [n, p] : pts) {
    if (!first_row) out << ",";
    first_row = false;
    out << "\n  {\"population\": " << p.population
        << ", \"cohort\": " << p.cohort
        << ", \"peak_rss_bytes\": " << p.peak_rss_bytes
        << ", \"materialized\": " << p.materialized
        << ", \"rounds_per_sec\": " << p.rounds_per_sec
        << ", \"benign_ac\": " << p.benign_ac
        << ", \"attack_sr\": " << p.attack_sr << "}";
  }
  out << "\n]}\n";
  if (!shard_eq_flat() || !budget_ok || !sublinear_ok) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  finalize();
  benchmark::Shutdown();
  return 0;
}
