// Fig. 14 — WaNet trigger imperceptibility: backdoored and legitimate
// samples are nearly identical. We quantify the visual gap as per-sample
// L2 / L-infinity pixel distortion of the warp trigger, compared against
// the same statistics for the BadNets-style patch trigger (which *is*
// visible) and against the image noise floor.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "data/synthetic_image.h"
#include "stats/summary.h"
#include "trojan/patch_trigger.h"
#include "trojan/warp_trigger.h"

namespace {

using namespace collapois;

struct Row {
  const char* series;
  double l2_mean;
  double linf_mean;
};

std::vector<Row>& rows() {
  static std::vector<Row> r;
  return r;
}

void distortion(benchmark::State& state) {
  stats::Rng rng(17);
  data::SyntheticImageGenerator gen({}, 21);
  trojan::WarpTrigger warp({}, 23);
  const trojan::PatchTrigger patch = trojan::PatchTrigger::global_dba(16, 16);

  for (auto _ : state) {
    stats::RunningStats warp_l2, warp_linf, patch_l2, patch_linf, noise_l2;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      const auto e = gen.sample(i % 10, rng);
      const auto dw = warp.distortion(e.x);
      warp_l2.add(dw.l2);
      warp_linf.add(dw.linf);
      const auto dp = patch.distortion(e.x);
      patch_l2.add(dp.l2);
      patch_linf.add(dp.linf);
      // Noise floor: distance between two samples of the same class.
      const auto e2 = gen.sample(i % 10, rng);
      double d2 = 0.0;
      for (std::size_t k = 0; k < e.x.size(); ++k) {
        const double d = e.x[k] - e2.x[k];
        d2 += d * d;
      }
      noise_l2.add(std::sqrt(d2));
    }
    rows().clear();
    rows().push_back({"warp trigger (WaNet)", warp_l2.mean(),
                      warp_linf.mean()});
    rows().push_back({"patch trigger (BadNets/DBA)", patch_l2.mean(),
                      patch_linf.mean()});
    rows().push_back({"same-class sampling noise floor", noise_l2.mean(),
                      0.0});
    state.counters["warp_l2"] = warp_l2.mean();
    state.counters["noise_l2"] = noise_l2.mean();
  }
}
BENCHMARK(distortion)->Iterations(1)->Unit(benchmark::kMillisecond);

void print_table() {
  std::cout << "== Fig. 14 — trigger imperceptibility (per-sample pixel "
               "distortion, 16x16 images) ==\n";
  std::cout << std::left << std::setw(36) << "series" << std::right
            << std::setw(12) << "L2_mean" << std::setw(12) << "Linf_mean"
            << "\n";
  for (const auto& r : rows()) {
    std::cout << std::left << std::setw(36) << r.series << std::right
              << std::fixed << std::setprecision(4) << std::setw(12)
              << r.l2_mean << std::setw(12) << r.linf_mean << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "(paper shape: the warp's distortion sits at/below the "
               "natural sampling noise floor, unlike the visible patch)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  benchmark::Shutdown();
  return 0;
}
