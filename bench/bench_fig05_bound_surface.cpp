// Fig. 5 — The Theorem 1 lower bound |C|/|N| as a 3-D surface over
// (mu_alpha, sigma), with psi ~ U[0.9, 1.0]. Pure closed-form evaluation
// of Eq. 5; the bench prints the surface as a grid table.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "core/theory.h"

namespace {

using namespace collapois;

constexpr double kA = 0.9;
constexpr double kB = 1.0;

void surface(benchmark::State& state) {
  double checksum = 0.0;
  for (auto _ : state) {
    for (double mu = 0.0; mu <= 1.4; mu += 0.1) {
      for (double sigma = 0.0; sigma <= 1.0; sigma += 0.1) {
        checksum += core::theory::theorem1_fraction(mu, sigma, kA, kB);
      }
    }
  }
  state.counters["checksum"] = checksum;
}
BENCHMARK(surface);

void print_grid() {
  std::cout << "== Fig. 5 — |C|/|N| lower bound over (mu, sigma), psi~U[0.9,1] ==\n";
  std::cout << std::setw(8) << "mu\\sig";
  for (double sigma = 0.0; sigma <= 1.01; sigma += 0.2) {
    std::cout << std::setw(9) << std::setprecision(1) << std::fixed << sigma;
  }
  std::cout << "\n";
  for (double mu = 0.0; mu <= 1.41; mu += 0.2) {
    std::cout << std::setw(8) << std::setprecision(1) << std::fixed << mu;
    for (double sigma = 0.0; sigma <= 1.01; sigma += 0.2) {
      std::cout << std::setw(9) << std::setprecision(4)
                << core::theory::theorem1_fraction(mu, sigma, kA, kB);
    }
    std::cout << "\n";
  }
  std::cout.unsetf(std::ios::fixed);
  std::cout << "(monotone decreasing in both axes: more gradient scatter -> "
               "fewer compromised clients needed)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_grid();
  benchmark::Shutdown();
  return 0;
}
