// Chaos harness — crash-injection and recovery under compound faults
// (DESIGN.md §13).
//
// Every cell of {crash phase} x {round engine} runs the same campaign
// under client faults (dropout + stragglers), a lossy transport, and
// shard crash faults inside the 2-shard aggregation tree, then:
//   1. runs uninterrupted for the reference trajectory;
//   2. re-runs with a scheduled CrashInjected at the cell's crash point
//      (post-train / mid-buffer / a torn mid-save write), checkpointing
//      through a rolling keep-last-3 chain every 2 rounds;
//   3. resumes from the chain and compares against the reference.
//
// Three gates make the recovery story executable (exit 1 on failure):
//   1. resume_bit_exact — every cell's resumed run reproduces the
//      reference final global model bit-for-bit and matches the
//      reference per-round ||theta - X|| trajectory over the replayed
//      suffix;
//   2. torn_head_recovered — every mid-save cell discards the torn head
//      (recovery_discarded >= 1) and resumes from the previous intact
//      generation;
//   3. failover_transparent — a campaign with 10% per-attempt shard
//      crashes on a 4-shard tree loses ZERO rounds, actually degrades
//      (failovers observed; fixed seed, so this cannot flake), and ends
//      bit-identical to the fault-free flat run.
// Results land in BENCH_chaos_recovery.json in the working directory.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/chaos.h"

namespace {

using namespace collapois;

constexpr std::size_t kShards = 2;
constexpr std::size_t kCheckpointEvery = 2;
constexpr std::size_t kCheckpointKeep = 3;

std::size_t rounds() { return 6 * bench::scale(); }
std::size_t crash_round() { return rounds() / 2; }

// The compound-fault campaign: unreliable clients, a lossy transport,
// and a faulty shard tree — the full production fault surface at once.
sim::ExperimentConfig workload(fl::RoundEngineKind engine) {
  sim::ExperimentConfig cfg;
  cfg.dataset = sim::DatasetKind::sentiment_like;
  cfg.attack = sim::AttackKind::collapois;
  cfg.defense = defense::DefenseKind::trimmed_mean;
  cfg.n_clients = 40;
  cfg.samples_per_client = 30;
  cfg.sample_prob = 0.3;
  cfg.rounds = rounds();
  cfg.attack_start_round = 1;
  cfg.round_engine = engine;
  cfg.faults.dropout_prob = 0.1;
  cfg.faults.straggler_prob = 0.1;
  cfg.net.enabled = true;
  cfg.net.loss_prob = 0.05;
  cfg.shards = kShards;
  cfg.shard_faults.crash_prob = 0.1;
  cfg.threads = 2;
  cfg.eval_max_clients = 8;
  cfg.seed = 11;
  return cfg;
}

const char* engine_name(fl::RoundEngineKind engine) {
  return engine == fl::RoundEngineKind::sync ? "sync" : "buffered_async";
}

struct Cell {
  std::string engine;
  std::string phase;
  std::size_t crash_round = 0;
  std::size_t resume_round = 0;
  std::size_t discarded = 0;
  std::string recovered_from;
  bool crash_fired = false;
  bool bits_equal = false;
  bool trajectory_equal = false;
};

std::vector<Cell>& cells() {
  static std::vector<Cell> c;
  return c;
}

struct FailoverResult {
  std::size_t failures = 0;
  std::size_t failovers = 0;
  std::size_t degraded_rounds = 0;
  std::size_t skipped_rounds = 0;
  bool bits_equal = false;
  bool recorded = false;
};

FailoverResult& failover() {
  static FailoverResult f;
  return f;
}

// One reference trajectory per engine, shared across that engine's cells.
const sim::ExperimentResult& reference(fl::RoundEngineKind engine) {
  static sim::ExperimentResult sync_ref, async_ref;
  static bool have_sync = false, have_async = false;
  if (engine == fl::RoundEngineKind::sync) {
    if (!have_sync) {
      sync_ref = sim::run_experiment(workload(engine));
      have_sync = true;
    }
    return sync_ref;
  }
  if (!have_async) {
    async_ref = sim::run_experiment(workload(engine));
    have_async = true;
  }
  return async_ref;
}

bool bits_equal(const tensor::FlatVec& a, const tensor::FlatVec& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

void remove_chain(const std::string& head) {
  for (std::size_t age = 0; age < kCheckpointKeep + 1; ++age) {
    const std::string slot =
        age == 0 ? head : head + "." + std::to_string(age);
    std::remove(slot.c_str());
  }
  std::remove((head + ".tmp").c_str());
}

void run_cell(benchmark::State& state, fl::RoundEngineKind engine,
              sim::CrashPhase phase) {
  const sim::ExperimentConfig cfg = workload(engine);
  const std::string chain = std::string("chaos_ck_") + engine_name(engine) +
                            "_" + sim::crash_phase_name(phase) + ".bin";
  for (auto _ : state) {
    const sim::ExperimentResult& ref = reference(engine);

    Cell cell;
    cell.engine = engine_name(engine);
    cell.phase = sim::crash_phase_name(phase);
    cell.crash_round = crash_round();
    remove_chain(chain);

    // Crash cycle: the scheduled kill must actually fire.
    sim::RunOptions crash;
    crash.checkpoint_save_path = chain;
    crash.checkpoint_every = kCheckpointEvery;
    crash.checkpoint_keep = kCheckpointKeep;
    crash.crash_round = crash_round();
    crash.crash_phase = phase;
    try {
      sim::run_experiment(cfg, crash);
    } catch (const sim::CrashInjected&) {
      cell.crash_fired = true;
    }

    // Restart cycle: resume through the chain and replay to the end.
    if (cell.crash_fired) {
      sim::RunOptions resume;
      resume.checkpoint_load_path = chain;
      resume.checkpoint_keep = kCheckpointKeep;
      const sim::ExperimentResult resumed = sim::run_experiment(cfg, resume);
      cell.resume_round = resumed.rounds.empty() ? 0
                                                 : resumed.rounds.front().round;
      cell.discarded = resumed.recovery_discarded;
      cell.recovered_from = resumed.recovered_from;
      cell.bits_equal = bits_equal(ref.final_global, resumed.final_global);
      cell.trajectory_equal = true;
      for (const auto& rec : resumed.rounds) {
        if (rec.round >= ref.rounds.size() ||
            rec.distance_to_x != ref.rounds[rec.round].distance_to_x) {
          cell.trajectory_equal = false;
        }
      }
    }
    cells().push_back(cell);
    remove_chain(chain);

    state.counters["crash_round"] = static_cast<double>(cell.crash_round);
    state.counters["resume_round"] = static_cast<double>(cell.resume_round);
    state.counters["discarded"] = static_cast<double>(cell.discarded);
    state.counters["bit_exact"] = cell.bits_equal ? 1.0 : 0.0;
  }
}

// Gate 3: 10% per-attempt shard crashes on a 4-shard tree vs the
// fault-free flat path — zero lost rounds, observed failovers, identical
// bits.
void run_failover(benchmark::State& state) {
  sim::ExperimentConfig faulty = workload(fl::RoundEngineKind::sync);
  faulty.shards = 4;
  // The harshest recovery policy: no retries, so every fired fault is an
  // immediate failover. At 10% per attempt with retries a failover needs
  // three consecutive faults (~1e-3 per shard-round) — unobservable in a
  // CI-sized campaign. The fault seed is chosen so crashes provably fire
  // inside this run's (shard, round) window; decisions are counter-based,
  // so the count is deterministic and the gate cannot flake.
  faulty.shard_faults.max_retries = 0;
  faulty.shard_faults.seed = 7;
  sim::ExperimentConfig flat = faulty;
  flat.shards = 1;
  flat.shard_faults = {};
  for (auto _ : state) {
    const sim::ExperimentResult f = sim::run_experiment(faulty);
    const sim::ExperimentResult base = sim::run_experiment(flat);
    FailoverResult r;
    for (const auto& rec : f.rounds) {
      r.failures += rec.shard_failures;
      r.failovers += rec.shard_failovers;
      if (rec.degraded) ++r.degraded_rounds;
      if (rec.aggregate_skipped) ++r.skipped_rounds;
    }
    r.bits_equal = bits_equal(f.final_global, base.final_global);
    r.recorded = true;
    failover() = r;

    state.counters["shard_failures"] = static_cast<double>(r.failures);
    state.counters["shard_failovers"] = static_cast<double>(r.failovers);
    state.counters["degraded_rounds"] = static_cast<double>(r.degraded_rounds);
    state.counters["bit_exact"] = r.bits_equal ? 1.0 : 0.0;
  }
}

void register_all() {
  const fl::RoundEngineKind engines[] = {fl::RoundEngineKind::sync,
                                         fl::RoundEngineKind::buffered_async};
  const sim::CrashPhase phases[] = {sim::CrashPhase::post_train,
                                    sim::CrashPhase::mid_buffer,
                                    sim::CrashPhase::mid_save};
  for (fl::RoundEngineKind engine : engines) {
    for (sim::CrashPhase phase : phases) {
      const std::string name = std::string("chaos_recovery/engine:") +
                               engine_name(engine) + "/phase:" +
                               sim::crash_phase_name(phase);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [engine, phase](benchmark::State& s) {
                                     run_cell(s, engine, phase);
                                   })
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::RegisterBenchmark(
      "chaos_recovery/failover_transparency/shards:4",
      [](benchmark::State& s) { run_failover(s); })
      ->Iterations(1)
      ->Unit(benchmark::kSecond);
}

void finalize() {
  if (cells().empty() && !failover().recorded) return;

  std::cout << "== Chaos recovery — crash/restart cycles under client + "
               "transport + shard faults ==\n";
  std::cout << std::left << std::setw(16) << "engine" << std::setw(12)
            << "phase" << std::right << std::setw(7) << "crash"
            << std::setw(8) << "resume" << std::setw(11) << "discarded"
            << std::setw(10) << "bit_exact" << std::setw(12) << "trajectory"
            << "\n";
  // Each gate judges only the cells that actually ran, so a
  // --benchmark_filter'ed run never fails vacuously.
  bool resume_ok = true;
  bool torn_ok = true;
  for (const auto& c : cells()) {
    std::cout << std::left << std::setw(16) << c.engine << std::setw(12)
              << c.phase << std::right << std::setw(7) << c.crash_round
              << std::setw(8) << c.resume_round << std::setw(11)
              << c.discarded << std::setw(10) << (c.bits_equal ? "yes" : "NO")
              << std::setw(12) << (c.trajectory_equal ? "yes" : "NO") << "\n";
    resume_ok = resume_ok && c.crash_fired && c.bits_equal &&
                c.trajectory_equal;
    if (c.phase == "mid-save") torn_ok = torn_ok && c.discarded >= 1;
  }

  const FailoverResult& f = failover();
  const bool failover_ok = !f.recorded ||
                           (f.bits_equal && f.skipped_rounds == 0 &&
                            f.failovers > 0);
  if (f.recorded) {
    std::cout << "failover_transparency: failures=" << f.failures
              << " failovers=" << f.failovers << " degraded_rounds="
              << f.degraded_rounds << " skipped_rounds=" << f.skipped_rounds
              << " bit_exact=" << (f.bits_equal ? "yes" : "NO") << "\n";
  }
  std::cout << "resume_bit_exact=" << (resume_ok ? "yes" : "NO")
            << "  torn_head_recovered=" << (torn_ok ? "yes" : "NO")
            << "  failover_transparent=" << (failover_ok ? "yes" : "NO")
            << "\n";

  std::ofstream out("BENCH_chaos_recovery.json");
  out << "{\"bench\": \"chaos_recovery\",\n"
      << " \"workload\": \"sentiment/collapois/trimmedmean rounds="
      << rounds() << " shards=" << kShards
      << " dropout=0.1 net_loss=0.05 shard_crash=0.1\",\n"
      << " \"resume_bit_exact\": " << (resume_ok ? "true" : "false")
      << ",\n \"torn_head_recovered\": " << (torn_ok ? "true" : "false")
      << ",\n \"failover_transparent\": " << (failover_ok ? "true" : "false")
      << ",\n \"failover\": {\"shard_failures\": " << f.failures
      << ", \"shard_failovers\": " << f.failovers
      << ", \"degraded_rounds\": " << f.degraded_rounds
      << ", \"skipped_rounds\": " << f.skipped_rounds
      << ", \"bit_exact\": " << (f.bits_equal ? "true" : "false")
      << "},\n \"cells\": [";
  bool first = true;
  for (const auto& c : cells()) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"engine\": \"" << c.engine << "\", \"phase\": \"" << c.phase
        << "\", \"crash_round\": " << c.crash_round
        << ", \"resume_round\": " << c.resume_round
        << ", \"discarded\": " << c.discarded << ", \"recovered_from\": \""
        << c.recovered_from << "\", \"crash_fired\": "
        << (c.crash_fired ? "true" : "false")
        << ", \"bit_exact\": " << (c.bits_equal ? "true" : "false")
        << ", \"trajectory_equal\": "
        << (c.trajectory_equal ? "true" : "false") << "}";
  }
  out << "\n]}\n";
  if (!resume_ok || !torn_ok || !failover_ok) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  finalize();
  benchmark::Shutdown();
  return 0;
}
