// Transport resilience — attack efficacy across network regimes: CollaPois
// vs D-Pois with 0% / 5% / 20% message loss, under no deadline and under a
// tight report-deadline regime with over-provisioned sampling (the
// production-FL conditions of Bonawitz et al. / Shejwalkar et al.).
// Reports Benign AC / Attack SR plus the transport accounting (sent, lost,
// retried, deadline/excess drops, skipped rounds) — the question is
// whether CollaPois's shared-trojan pull survives a network that delays
// and drops the compromised clients' reports like everyone else's.
//
// The table lands in BENCH_transport_resilience.json (written to the
// working directory).
//
// The zero-change guarantee is asserted, not assumed: for each attack the
// loss=0 / no-deadline point (transport ENABLED, every fault off) must be
// element-exact equal to the same campaign with the transport DISABLED —
// the envelope round-trip and the transport plumbing may not perturb a
// single bit. The bench aborts loudly otherwise.
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>

#include "bench_common.h"

namespace {

using namespace collapois;

struct Regime {
  std::string label;
  double deadline_ms;
  double over_sample;
};

const std::vector<Regime>& regimes() {
  // "tight" closes the round at 55 virtual ms against a 10-50ms latency
  // band — first-attempt deliveries usually make it, retries mostly do
  // not — and over-provisions the cohort by 25% the way production
  // over-selection compensates for report misses.
  static const std::vector<Regime> r = {
      {"open", 0.0, 0.0},
      {"tight", 55.0, 0.25},
  };
  return r;
}

const std::vector<double>& loss_levels() {
  static const std::vector<double> l = {0.0, 0.05, 0.20};
  return l;
}

sim::ExperimentConfig workload(sim::AttackKind attack, double loss,
                               const Regime& regime, bool transport_enabled) {
  sim::ExperimentConfig cfg =
      bench::base_config(sim::DatasetKind::sentiment_like);
  cfg.attack = attack;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  cfg.net.enabled = transport_enabled;
  cfg.net.loss_prob = loss;
  cfg.net.deadline_ms = regime.deadline_ms;
  cfg.net.over_sample = regime.over_sample;
  return cfg;
}

struct Row {
  double benign_ac = 0.0;
  double attack_sr = 0.0;
  std::size_t sent = 0;
  std::size_t lost = 0;
  std::size_t retried = 0;
  std::size_t transport_dropped = 0;
  std::size_t deadline_dropped = 0;
  std::size_t excess_dropped = 0;
  std::size_t skipped_rounds = 0;
};

std::map<std::string, Row>& table() {
  static std::map<std::string, Row> t;
  return t;
}

bool& zero_fault_exact() {
  static bool ok = true;
  return ok;
}

void run_point(benchmark::State& state, sim::AttackKind attack, double loss,
               const Regime& regime) {
  const sim::ExperimentConfig cfg = workload(attack, loss, regime, true);
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg);
    Row row;
    row.benign_ac = r.population.benign_ac;
    row.attack_sr = r.population.attack_sr;
    for (const auto& rec : r.rounds) {
      row.sent += rec.transport.msgs_sent;
      row.lost += rec.transport.lost;
      row.retried += rec.transport.retried;
      row.transport_dropped += rec.transport.transport_dropped;
      row.deadline_dropped += rec.transport.deadline_dropped;
      row.excess_dropped += rec.transport.excess_dropped;
      row.skipped_rounds += rec.aggregate_skipped ? 1 : 0;
    }
    if (loss == 0.0 && regime.deadline_ms == 0.0 &&
        regime.over_sample == 0.0) {
      // Zero-fault gate: the enabled-but-faultless transport must
      // reproduce the disabled path element-exactly.
      const sim::ExperimentResult off =
          sim::run_experiment(workload(attack, loss, regime, false));
      if (off.final_global != r.final_global) {
        zero_fault_exact() = false;
        std::cerr << "FATAL: zero-fault transport diverged from the "
                     "disabled path for "
                  << sim::attack_name(attack) << "\n";
      }
    }
    char label[64];
    std::snprintf(label, sizeof(label), "%s/loss%02d/%s",
                  sim::attack_name(attack), static_cast<int>(loss * 100),
                  regime.label.c_str());
    table()[label] = row;
    bench::report_counters(state, r);
    state.counters["lost"] = static_cast<double>(row.lost);
    state.counters["deadline_dropped"] =
        static_cast<double>(row.deadline_dropped);
  }
}

void register_all() {
  for (sim::AttackKind attack :
       {sim::AttackKind::collapois, sim::AttackKind::dpois}) {
    for (double loss : loss_levels()) {
      for (const Regime& regime : regimes()) {
        const std::string name = std::string("transport_resilience/") +
                                 sim::attack_name(attack) + "/loss:" +
                                 std::to_string(static_cast<int>(loss * 100)) +
                                 "/" + regime.label;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [attack, loss, &regime](benchmark::State& s) {
              run_point(s, attack, loss, regime);
            })
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
      }
    }
  }
}

void finalize() {
  const auto& rows = table();
  if (rows.empty()) return;
  std::cout << "== Transport resilience — CollaPois vs D-Pois under message "
               "loss x deadline regimes (Sentiment, 1% compromised) ==\n";
  std::cout << std::right << std::setw(24) << "attack/loss/regime"
            << std::setw(12) << "benign_ac" << std::setw(12) << "attack_sr"
            << std::setw(9) << "sent" << std::setw(8) << "lost" << std::setw(9)
            << "retried" << std::setw(9) << "dl_drop" << std::setw(9)
            << "excess" << std::setw(9) << "skipped" << "\n";
  for (const auto& [label, row] : rows) {
    std::cout << std::right << std::setw(24) << label << std::fixed
              << std::setprecision(4) << std::setw(12) << row.benign_ac
              << std::setw(12) << row.attack_sr;
    std::cout.unsetf(std::ios::fixed);
    std::cout << std::setw(9) << row.sent << std::setw(8) << row.lost
              << std::setw(9) << row.retried << std::setw(9)
              << row.deadline_dropped << std::setw(9) << row.excess_dropped
              << std::setw(9) << row.skipped_rounds << "\n";
  }
  std::cout << "zero_fault_element_exact="
            << (zero_fault_exact() ? "yes" : "NO — TRANSPORT PERTURBS THE "
                                             "DISABLED PATH")
            << "\n(expected: retries absorb moderate loss under the open "
               "regime; the tight deadline converts retries into deadline "
               "drops, thinning both attacks' per-round mass while "
               "over-selection keeps benign progress intact)\n";

  std::ofstream out("BENCH_transport_resilience.json");
  out << "{\"bench\": \"transport_resilience\",\n"
      << " \"workload\": \"sentiment 1%-compromised, loss x {open, tight "
         "deadline+oversample}\",\n"
      << " \"zero_fault_element_exact\": "
      << (zero_fault_exact() ? "true" : "false") << ",\n \"points\": [";
  bool first = true;
  for (const auto& [label, row] : rows) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"label\": \"" << label << "\", \"benign_ac\": "
        << row.benign_ac << ", \"attack_sr\": " << row.attack_sr
        << ", \"sent\": " << row.sent << ", \"lost\": " << row.lost
        << ", \"retried\": " << row.retried
        << ", \"transport_dropped\": " << row.transport_dropped
        << ", \"deadline_dropped\": " << row.deadline_dropped
        << ", \"excess_dropped\": " << row.excess_dropped
        << ", \"skipped_rounds\": " << row.skipped_rounds << "}";
  }
  out << "\n]}\n";
  if (!zero_fault_exact()) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  finalize();
  benchmark::Shutdown();
  return 0;
}
