// Section V, "Bypassing Defenses" — can a MESAS-style statistical
// defender separate CollaPois updates from benign ones?
//
// Methodology note: a defender can only compare gradients submitted
// against the *same* broadcast model, so the tests run per round (on
// rounds where at least two compromised and two benign clients were
// sampled) and we report the distribution of outcomes across rounds.
// Three attacker configurations show the stealth-effectiveness tradeoff:
//   aggressive — plain Eq. 4 updates (maximum pull);
//   clipped    — a shared magnitude bound A at the benign envelope;
//   blended    — Section IV-D in full: direction blended with the
//                client's own clean gradient and magnitude drawn from the
//                clean-gradient distribution.
// The paper reports the blended regime: no significant test differences
// and ~3.5% 3-sigma outliers. At the simulator's round budget the fully
// blended attack is correspondingly slower (see EXPERIMENTS.md).
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "defense/detector.h"
#include "stats/summary.h"

namespace {

using namespace collapois;

struct Row {
  std::string config;
  double attack_sr = 0.0;
  double benign_ac = 0.0;
  int usable_rounds = 0;
  double flagged_fraction = 0.0;  // any of the 6 tests rejects at 5%
  double median_p_angle = 0.0;    // Welch t on the angle feature
  double mean_three_sigma = 0.0;
};

std::vector<Row>& rows() {
  static std::vector<Row> r;
  return r;
}

void run_point(benchmark::State& state, const std::string& label,
               double blend, bool mimic, double clip) {
  sim::ExperimentConfig cfg =
      bench::base_config(sim::DatasetKind::femnist_like);
  cfg.attack = sim::AttackKind::collapois;
  cfg.alpha = 0.1;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  cfg.sample_prob = 0.15;
  cfg.rounds = 300 * bench::scale();
  cfg.collapois.blend_fraction = blend;
  cfg.collapois.mimic_benign_norm = mimic;
  cfg.collapois.clip = clip;
  sim::RunOptions opt;
  opt.keep_telemetry = true;

  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg, opt);
    Row row;
    row.config = label;
    row.attack_sr = r.population.attack_sr;
    row.benign_ac = r.population.benign_ac;
    int flagged = 0;
    std::vector<double> p_angle;
    stats::RunningStats sigma_rate;
    for (std::size_t t = cfg.attack_start_round; t < r.telemetry.size();
         ++t) {
      const auto& tele = r.telemetry[t];
      int mal = 0;
      int ben = 0;
      for (bool c : tele.compromised) (c ? mal : ben) += 1;
      if (mal < 2 || ben < 2) continue;
      const auto rep = defense::analyze_round(tele.updates, tele.compromised);
      ++row.usable_rounds;
      if (rep.distinguishable()) ++flagged;
      p_angle.push_back(rep.angle_t.p_value);
      sigma_rate.add(rep.three_sigma_rate);
    }
    if (row.usable_rounds > 0) {
      row.flagged_fraction =
          static_cast<double>(flagged) / row.usable_rounds;
      row.median_p_angle = stats::median(p_angle);
      row.mean_three_sigma = sigma_rate.mean();
    }
    rows().push_back(row);
    state.counters["flagged"] = row.flagged_fraction;
    state.counters["attack_sr"] = row.attack_sr;
  }
}

void register_all() {
  struct Config {
    const char* label;
    double blend;
    bool mimic;
    double clip;
  };
  for (const Config c : {Config{"aggressive", 0.0, false, 0.0},
                         Config{"clipped A=0.5", 0.0, false, 0.5},
                         Config{"blended (IV-D)", 0.3, true, 0.0}}) {
    benchmark::RegisterBenchmark(
        (std::string("bypass/") + c.label).c_str(),
        [c](benchmark::State& s) {
          run_point(s, c.label, c.blend, c.mimic, c.clip);
        })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

void print_table() {
  std::cout << "== Bypassing statistical defenses — per-round tests, "
               "malicious vs benign updates ==\n";
  std::cout << std::left << std::setw(18) << "config" << std::right
            << std::setw(10) << "attack_sr" << std::setw(10) << "benign_ac"
            << std::setw(9) << "rounds" << std::setw(10) << "flagged"
            << std::setw(12) << "med_p(angle)" << std::setw(10) << "3sigma"
            << "\n";
  for (const auto& r : rows()) {
    std::cout << std::left << std::setw(18) << r.config << std::right
              << std::fixed << std::setprecision(3) << std::setw(10)
              << r.attack_sr << std::setw(10) << r.benign_ac << std::setw(9)
              << r.usable_rounds << std::setw(10) << r.flagged_fraction
              << std::setw(12) << r.median_p_angle << std::setw(10)
              << r.mean_three_sigma << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "(paper regime = blended: p-values above 0.05 and a ~3.5% "
               "3-sigma outlier rate; note ~26% of rounds flag by chance "
               "when 6 tests run at the 5% level)\n";
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  benchmark::Shutdown();
  return 0;
}
