// Codec bandwidth — bytes-on-wire and model quality per update codec,
// plus the SIMD encode/decode tier gate (DESIGN.md §15).
//
// Sweeps codec {identity, fp16, int8, topk} x engine {sync,
// buffered_async} on a CollaPois FEMNIST-like (LeNet-style) workload over
// a zero-fault zero-latency transport and reports, per cell: fp32 vs
// encoded bytes-on-wire, the realized compression ratio, Benign AC and
// CollaPois Attack SR. The campaign lands in BENCH_codec_bandwidth.json
// (working directory), each cell stamped with the dispatch tier it ran
// under.
//
// Four gates, all fatal (exit 1):
//   1. identity over the zero-fault wire is element-exact equal to the
//      transport-disabled run — on BOTH engines (the codec layer must not
//      perturb the pre-codec exactness guarantee);
//   2. int8 reduces bytes-on-wire by >= 3.5x on the LeNet update;
//   3. topk (10%) reduces bytes-on-wire by >= 8x;
//   4. every available SIMD tier's encode+decode on a LeNet-sized delta
//      is never slower than scalar — interleaved best-of-5, with a 10%
//      noise allowance (the tiers are bit-identical, so this is purely a
//      latency gate).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <random>
#include <vector>

#include "bench_common.h"
#include "kernels/cpu_dispatch.h"
#include "net/codec.h"
#include "net/codec_tiles.h"

namespace {

using namespace collapois;

const std::vector<net::CodecKind>& codec_kinds() {
  static const std::vector<net::CodecKind> k = {
      net::CodecKind::identity, net::CodecKind::fp16, net::CodecKind::int8,
      net::CodecKind::topk};
  return k;
}

const std::vector<fl::RoundEngineKind>& engines() {
  static const std::vector<fl::RoundEngineKind> e = {
      fl::RoundEngineKind::sync, fl::RoundEngineKind::buffered_async};
  return e;
}

sim::ExperimentConfig workload(fl::RoundEngineKind engine,
                               net::CodecKind codec) {
  sim::ExperimentConfig cfg = bench::base_config(sim::DatasetKind::femnist_like);
  cfg.attack = sim::AttackKind::collapois;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  cfg.n_clients = 16 * bench::scale();
  cfg.rounds = 10 * bench::scale();
  cfg.sample_prob = 0.5;
  cfg.attack_start_round = 3;
  cfg.round_engine = engine;
  // Zero-fault, zero-latency wire: every update crosses the codec path
  // but nothing is lost or reordered, so the identity cells must be
  // element-exact equal to the transport-disabled baseline.
  cfg.net.enabled = true;
  cfg.net.latency_min_ms = 0.0;
  cfg.net.latency_max_ms = 0.0;
  cfg.codec.kind = codec;
  return cfg;
}

struct Cell {
  net::CodecKind codec = net::CodecKind::identity;
  fl::RoundEngineKind engine = fl::RoundEngineKind::sync;
  std::size_t fp32_bytes = 0;
  std::size_t wire_bytes = 0;
  double ratio = 1.0;
  double benign_ac = 0.0;
  double attack_sr = 0.0;
  bool bit_exact_vs_disabled = true;  // meaningful for identity cells only
};

using CellKey = std::pair<int, int>;  // (codec, engine) as ints for ordering

std::map<CellKey, Cell>& cells() {
  static std::map<CellKey, Cell> c;
  return c;
}

std::size_t& model_dim() {
  static std::size_t d = 0;
  return d;
}

void run_cell(benchmark::State& state, net::CodecKind codec,
              fl::RoundEngineKind engine) {
  const sim::ExperimentConfig cfg = workload(engine, codec);
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg);
    Cell c;
    c.codec = codec;
    c.engine = engine;
    for (const auto& rec : r.rounds) {
      c.fp32_bytes += rec.transport.fp32_bytes_sent;
      c.wire_bytes += rec.transport.wire_bytes_sent;
    }
    c.ratio = c.wire_bytes > 0 ? static_cast<double>(c.fp32_bytes) /
                                     static_cast<double>(c.wire_bytes)
                               : 1.0;
    c.benign_ac = r.population.benign_ac;
    c.attack_sr = r.population.attack_sr;
    if (codec == net::CodecKind::identity) {
      // Gate 1: the codec-disabled run must be element-exact identical.
      sim::ExperimentConfig disabled = cfg;
      disabled.net.enabled = false;
      const sim::ExperimentResult base = sim::run_experiment(disabled);
      c.bit_exact_vs_disabled = r.final_global == base.final_global;
    }
    model_dim() = r.final_global.size();
    cells()[{static_cast<int>(codec), static_cast<int>(engine)}] = c;
    state.counters["compression_ratio"] = c.ratio;
    state.counters["wire_bytes"] = static_cast<double>(c.wire_bytes);
    bench::report_counters(state, r);
  }
}

void register_all() {
  for (const auto codec : codec_kinds()) {
    for (const auto engine : engines()) {
      const std::string name = std::string("codec_bandwidth/codec:") +
                               net::codec_kind_name(codec) +
                               "/engine:" + fl::round_engine_name(engine);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [codec, engine](benchmark::State& s) { run_cell(s, codec, engine); })
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

// --- SIMD tier gate -----------------------------------------------------

std::vector<kernels::IsaTier> available_tiers() {
  std::vector<kernels::IsaTier> tiers{kernels::IsaTier::scalar};
  if (kernels::detected_tier() >= kernels::IsaTier::sse2) {
    tiers.push_back(kernels::IsaTier::sse2);
  }
  if (kernels::detected_tier() >= kernels::IsaTier::avx2 &&
      net::detail::avx2_codec_compiled()) {
    tiers.push_back(kernels::IsaTier::avx2);
  }
  return tiers;
}

// One encode+decode pass over a LeNet-sized delta through every lossy
// codec (identity is a memcpy either way — no tier-sensitive work).
double encode_decode_pass_ms(std::span<const float> delta) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto kind : {net::CodecKind::fp16, net::CodecKind::int8,
                          net::CodecKind::topk}) {
    net::CodecConfig cfg;
    cfg.kind = kind;
    fl::StateWriter w;
    net::encode_delta(w, delta, cfg);
    const std::vector<std::uint8_t> bytes = w.take();
    fl::StateReader r(bytes);
    const tensor::FlatVec back = net::decode_delta(r, cfg);
    benchmark::DoNotOptimize(back.data());
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct TierTiming {
  kernels::IsaTier tier = kernels::IsaTier::scalar;
  double best_ms = 0.0;
  double vs_scalar = 1.0;  // scalar_best / this_best (>= 1 is a win)
};

// Interleaved best-of-5: each rep times every tier back to back, so a
// frequency or scheduler shift hits all tiers alike; the per-tier minimum
// is the comparison point.
std::vector<TierTiming> time_tiers(std::size_t dim) {
  std::mt19937 gen(4242);
  std::uniform_real_distribution<float> unit(-1.0f, 1.0f);
  tensor::FlatVec delta(dim == 0 ? 16384 : dim);
  for (auto& x : delta) x = unit(gen);

  const std::vector<kernels::IsaTier> tiers = available_tiers();
  const kernels::IsaTier entry = kernels::active_tier();
  std::map<kernels::IsaTier, double> best;
  constexpr int kReps = 5;
  constexpr int kPassesPerRep = 20;
  for (int rep = 0; rep < kReps; ++rep) {
    for (const auto tier : tiers) {
      kernels::set_active_tier(tier);
      double ms = 0.0;
      for (int p = 0; p < kPassesPerRep; ++p) ms += encode_decode_pass_ms(delta);
      const auto it = best.find(tier);
      if (it == best.end() || ms < it->second) best[tier] = ms;
    }
  }
  kernels::set_active_tier(entry);

  std::vector<TierTiming> out;
  const double scalar_best = best[kernels::IsaTier::scalar];
  for (const auto tier : tiers) {
    TierTiming t;
    t.tier = tier;
    t.best_ms = best[tier];
    t.vs_scalar = t.best_ms > 0.0 ? scalar_best / t.best_ms : 1.0;
    out.push_back(t);
  }
  return out;
}

// --- finalize -----------------------------------------------------------

void finalize() {
  auto& cs = cells();
  if (cs.empty()) return;

  std::cout << "== Codec bandwidth — CollaPois FEMNIST-like, zero-fault "
               "wire ==\n";
  std::cout << std::right << std::setw(10) << "codec" << std::setw(16)
            << "engine" << std::setw(14) << "fp32_bytes" << std::setw(14)
            << "wire_bytes" << std::setw(8) << "ratio" << std::setw(12)
            << "benign_ac" << std::setw(12) << "attack_sr" << "\n";
  for (const auto& [key, c] : cs) {
    std::cout << std::right << std::setw(10) << net::codec_kind_name(c.codec)
              << std::setw(16) << fl::round_engine_name(c.engine)
              << std::setw(14) << c.fp32_bytes << std::setw(14) << c.wire_bytes
              << std::fixed << std::setprecision(2) << std::setw(8) << c.ratio
              << std::setprecision(4) << std::setw(12) << c.benign_ac
              << std::setw(12) << c.attack_sr << "\n";
    std::cout.unsetf(std::ios::fixed);
  }

  bool ok = true;
  const auto fail = [&ok](const std::string& msg) {
    std::cout << "GATE FAILED: " << msg << "\n";
    ok = false;
  };

  // Gate 1: identity exactness on both engines.
  for (const auto engine : engines()) {
    const auto it = cs.find({static_cast<int>(net::CodecKind::identity),
                             static_cast<int>(engine)});
    if (it == cs.end() || !it->second.bit_exact_vs_disabled) {
      fail(std::string("identity over the zero-fault wire is not bit-exact "
                       "vs codec-disabled under ") +
           fl::round_engine_name(engine));
    }
  }
  // Gates 2-3: compression floors on the sync cells.
  const auto ratio_of = [&cs](net::CodecKind kind) {
    const auto it = cs.find({static_cast<int>(kind),
                             static_cast<int>(fl::RoundEngineKind::sync)});
    return it != cs.end() ? it->second.ratio : 0.0;
  };
  if (ratio_of(net::CodecKind::int8) < 3.5) {
    fail("int8 bytes-on-wire reduction below 3.5x");
  }
  if (ratio_of(net::CodecKind::topk) < 8.0) {
    fail("topk(10%) bytes-on-wire reduction below 8x");
  }

  // Gate 4: SIMD tiers never slower than scalar (10% noise allowance).
  const std::vector<TierTiming> timings = time_tiers(model_dim());
  const double scalar_best = timings.front().best_ms;
  std::cout << "simd encode+decode (LeNet-sized delta, interleaved "
               "best-of-5):\n";
  for (const auto& t : timings) {
    std::cout << "  " << std::left << std::setw(8)
              << kernels::isa_tier_name(t.tier) << std::right << std::fixed
              << std::setprecision(3) << t.best_ms << " ms  ("
              << std::setprecision(2) << t.vs_scalar << "x vs scalar)\n";
    std::cout.unsetf(std::ios::fixed);
    if (t.best_ms > scalar_best * 1.10) {
      fail(std::string("tier ") + kernels::isa_tier_name(t.tier) +
           " encode+decode slower than scalar");
    }
  }

  std::ofstream out("BENCH_codec_bandwidth.json");
  out << "{\"bench\": \"codec_bandwidth\",\n"
      << " \"model_dim\": " << model_dim() << ",\n"
      << " \"isa_tier\": \""
      << kernels::isa_tier_name(kernels::active_tier()) << "\",\n"
      << " \"gates_passed\": " << (ok ? "true" : "false") << ",\n"
      << " \"cells\": [";
  bool first = true;
  for (const auto& [key, c] : cs) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"codec\": \"" << net::codec_kind_name(c.codec)
        << "\", \"engine\": \"" << fl::round_engine_name(c.engine)
        << "\", \"tier\": \""
        << kernels::isa_tier_name(kernels::active_tier())
        << "\", \"fp32_bytes\": " << c.fp32_bytes
        << ", \"wire_bytes\": " << c.wire_bytes
        << ", \"compression_ratio\": " << c.ratio
        << ", \"benign_ac\": " << c.benign_ac
        << ", \"attack_sr\": " << c.attack_sr;
    if (c.codec == net::CodecKind::identity) {
      out << ", \"bit_exact_vs_disabled\": "
          << (c.bit_exact_vs_disabled ? "true" : "false");
    }
    out << "}";
  }
  out << "\n ],\n \"simd\": [";
  first = true;
  for (const auto& t : timings) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"tier\": \"" << kernels::isa_tier_name(t.tier)
        << "\", \"best_ms\": " << t.best_ms
        << ", \"speedup_vs_scalar\": " << t.vs_scalar << "}";
  }
  out << "\n ]}\n";
  if (!ok) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  finalize();
  benchmark::Shutdown();
  return 0;
}
