// Kernel throughput — naive vs blocked GFLOP/s per dispatch tier.
//
// Sweeps every GEMM and Conv2d shape that the simulator's two
// architectures (LeNet-small on 16x16 FEMNIST-like images, the MLP head
// on 32-d sentiment embeddings) actually execute, at the training batch
// size, plus one channel-richer conv at CIFAR-like scale, and times
// forward + backward of each. The naive set is measured once (it has no
// dispatch); the blocked set is measured once per ISA tier the host can
// run (cpu_dispatch.h), re-pinned with set_active_tier between runs —
// unless COLLAPOIS_FORCE_ISA pins a single tier, in which case only that
// tier is measured and the bench fails loudly if the dispatcher's active
// tier disagrees with the forced name. All variants of a shape take their
// best-of-5 timing windows interleaved, so a contention burst on the
// runner costs every variant one discarded window instead of distorting
// one variant's whole measurement (and with it the gate ratios).
//
// The bench is also a gate (exit 1), always like-for-like tiers:
//   - blocked@scalar must not be slower than naive on any shape (both are
//     baseline-ISA code, so this is the pure algorithmic never-slower);
//   - every higher tier must not be slower than blocked@scalar on any
//     shape (vector paths must never lose to the portable ones);
//   - when the avx2 tier is measured, its best speedup over
//     blocked@scalar across the conv shapes must reach 1.5x. The LeNet
//     convs are lowering-bound (cin of 1 and 4 give 9- and 36-deep
//     reductions; im2col/col2im traffic is tier-neutral), so the
//     microkernel-bound cifar-scale conv is where the vector win must
//     show — per-shape numbers for all convs land in the JSON either way.
//
// Results land in BENCH_kernel_throughput.json with the detected CPU
// features and the tier each measurement ran on.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "kernels/cpu_dispatch.h"
#include "kernels/kernels.h"
#include "stats/rng.h"

namespace {

using namespace collapois;
using Clock = std::chrono::steady_clock;

// One bench shape: either a Conv2d layer (conv true, geometry in `conv`)
// or a Dense layer expressed as its forward GEMM [m x k] * [n x k]^T.
struct ZooShape {
  std::string name;
  bool is_conv = false;
  kernels::Conv2dShape conv;
  std::size_t m = 0, k = 0, n = 0;
};

// Shapes of nn/zoo.cpp at the default training batch size (16), plus
// "cifar/conv": a cin=8 -> cout=16 3x3 layer on 16x16 maps. The zoo's
// LeNet convs have 1 and 4 input channels, so their lowered GEMMs are
// 9 and 36 deep and the pass is dominated by tier-neutral im2col/col2im
// traffic; the CIFAR-scale layer (the paper's other benchmark family)
// has a 72-deep reduction over 4096 columns, which is what the packed
// microkernel path actually sees on non-toy models.
const std::vector<ZooShape>& zoo_shapes() {
  static const std::vector<ZooShape> s = {
      {"lenet/conv1", true, {16, 1, 16, 16, 4, 3, 1, 16, 16}, 0, 0, 0},
      {"lenet/conv2", true, {16, 4, 8, 8, 8, 3, 1, 8, 8}, 0, 0, 0},
      {"cifar/conv", true, {16, 8, 16, 16, 16, 3, 1, 16, 16}, 0, 0, 0},
      {"lenet/fc1", false, {}, 16, 128, 32},
      {"lenet/fc2", false, {}, 16, 32, 10},
      {"mlp/fc1", false, {}, 16, 32, 32},
      {"mlp/fc2", false, {}, 16, 32, 2},
  };
  return s;
}

// Forward + backward FLOPs of one shape (multiply+add counted as 2).
double shape_flops(const ZooShape& z) {
  if (z.is_conv) {
    const auto& c = z.conv;
    const double macs = static_cast<double>(c.batch) * c.cout * c.oh * c.ow *
                        c.cin * c.k * c.k;
    // forward (out) + backward (grad_weights and grad_input).
    return 2.0 * macs * 3.0;
  }
  const double macs = static_cast<double>(z.m) * z.k * z.n;
  // forward GEMM + the two backward GEMMs (dW, dX).
  return 2.0 * macs * 3.0;
}

struct Measurement {
  double gflops = 0.0;
  double us_per_pass = 0.0;
};

// (shape name, variant) -> measurement. Variants: "naive" plus one
// "blocked@<tier>" per measured tier.
std::map<std::pair<std::string, std::string>, Measurement>& results() {
  static std::map<std::pair<std::string, std::string>, Measurement> r;
  return r;
}

const char* kForceEnv = "COLLAPOIS_FORCE_ISA";

// The tiers the blocked set is measured on: the forced tier alone when
// COLLAPOIS_FORCE_ISA is set, else every tier up to detected_tier().
const std::vector<kernels::IsaTier>& tiers_to_measure() {
  static const std::vector<kernels::IsaTier> tiers = [] {
    std::vector<kernels::IsaTier> t;
    if (std::getenv(kForceEnv) != nullptr) {
      t.push_back(kernels::active_tier());
      return t;
    }
    const auto top = static_cast<int>(kernels::detected_tier());
    for (int i = 0; i <= top; ++i) t.push_back(static_cast<kernels::IsaTier>(i));
    return t;
  }();
  return tiers;
}

// Loud-failure check for the forced-ISA path: the dispatcher already
// throws when the forced tier exceeds the CPU, but the bench's whole
// point is pinning, so a silent fallback (or a stale binary that ignores
// the env) must not produce a plausible-looking artifact.
void check_forced_isa_honored() {
  const char* forced = std::getenv(kForceEnv);
  if (forced == nullptr) return;
  kernels::IsaTier want;
  try {
    want = kernels::parse_isa_tier(forced);
  } catch (const std::exception& e) {
    std::cerr << "FATAL: " << kForceEnv << "=" << forced << ": " << e.what()
              << "\n";
    std::exit(2);
  }
  const auto got = kernels::active_tier();
  if (want != got) {
    std::cerr << "FATAL: " << kForceEnv << "=" << forced
              << " but the dispatcher selected tier '"
              << kernels::isa_tier_name(got) << "'\n";
    std::exit(2);
  }
}

struct ShapeBuffers {
  std::vector<float> in, weights, bias, out, go, gw, gb, gi;
};

ShapeBuffers make_buffers(const ZooShape& z, stats::Rng& rng) {
  ShapeBuffers b;
  auto fill = [&](std::vector<float>& v, std::size_t n) {
    v.resize(n);
    for (auto& x : v) x = static_cast<float>(rng.normal());
  };
  if (z.is_conv) {
    const auto& c = z.conv;
    fill(b.in, c.batch * c.cin * c.h * c.w);
    fill(b.weights, c.cout * c.cin * c.k * c.k);
    fill(b.bias, c.cout);
    fill(b.go, c.batch * c.cout * c.oh * c.ow);
    b.out.resize(b.go.size());
    b.gw.assign(b.weights.size(), 0.0f);
    b.gb.assign(b.bias.size(), 0.0f);
    b.gi.assign(b.in.size(), 0.0f);
  } else {
    fill(b.in, z.m * z.k);       // activations [m x k]
    fill(b.weights, z.n * z.k);  // dense W [n x k]
    fill(b.bias, z.n);
    fill(b.go, z.m * z.n);
    b.out.resize(z.m * z.n);
    b.gw.assign(b.weights.size(), 0.0f);
    b.gb.assign(b.bias.size(), 0.0f);
    b.gi.assign(z.m * z.k, 0.0f);
  }
  return b;
}

// One forward + backward pass of the shape under the given kernel set.
void one_pass(const ZooShape& z, const kernels::KernelOps& ops,
              ShapeBuffers& b) {
  if (z.is_conv) {
    ops.conv2d_forward(z.conv, b.in.data(), b.weights.data(), b.bias.data(),
                       b.out.data());
    std::fill(b.gi.begin(), b.gi.end(), 0.0f);
    ops.conv2d_backward(z.conv, b.in.data(), b.weights.data(), b.go.data(),
                        b.gw.data(), b.gb.data(), b.gi.data());
  } else {
    std::fill(b.out.begin(), b.out.end(), 0.0f);
    ops.gemm_a_bt_accum(b.in.data(), b.weights.data(), b.out.data(), z.m, z.k,
                        z.n, b.bias.data(), nullptr);
    ops.gemm_at_b_accum(b.go.data(), b.in.data(), b.gw.data(), z.m, z.n, z.k,
                        b.gb.data());
    ops.gemm(b.go.data(), b.weights.data(), b.gi.data(), z.m, z.n, z.k,
             nullptr);
  }
}

// One timed variant of a shape: the naive set (no dispatch) or the
// blocked set pinned to one ISA tier.
struct VariantSpec {
  std::string name;
  kernels::KernelKind kind;
  bool set_tier = false;
  kernels::IsaTier tier = kernels::IsaTier::scalar;
};

std::vector<VariantSpec> variants_of_shape() {
  std::vector<VariantSpec> v;
  v.push_back({"naive", kernels::KernelKind::naive});
  for (const auto tier : tiers_to_measure()) {
    v.push_back({std::string("blocked@") + kernels::isa_tier_name(tier),
                 kernels::KernelKind::blocked, true, tier});
  }
  return v;
}

// Measures every variant of one shape with best-of-5 timing windows that
// are INTERLEAVED across the variants: window w of every variant runs
// before window w+1 of any of them. The gates below are ratios between
// variants, and a contended runner's noise bursts last longer than one
// 50 ms window — interleaving spreads a burst over one window of each
// variant (where the per-variant min discards it) instead of letting it
// swallow a single variant's entire measurement and fake a regression.
void run_shape_all(benchmark::State& state, const ZooShape& z) {
  const std::vector<VariantSpec> variants = variants_of_shape();
  stats::Rng rng(2024);
  ShapeBuffers b = make_buffers(z, rng);
  const double flops = shape_flops(z);
  for (auto _ : state) {
    std::vector<std::size_t> reps(variants.size(), 8);
    std::vector<double> best_s(variants.size(), 0.0);
    // Per-variant calibration (tiers differ ~10x in speed, so rep counts
    // must too): warm the scratch workspace, then grow reps until one
    // window reaches 50 ms. The calibration window doubles as window 0.
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const auto& ops = kernels::ops_for(variants[v].kind);
      if (variants[v].set_tier) kernels::set_active_tier(variants[v].tier);
      one_pass(z, ops, b);
      for (;;) {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < reps[v]; ++i) one_pass(z, ops, b);
        best_s[v] =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (best_s[v] >= 0.05 || reps[v] >= (1u << 20)) break;
        reps[v] *= 4;
      }
    }
    // Four more windows per variant, interleaved; keep each min.
    for (int w = 1; w < 5; ++w) {
      for (std::size_t v = 0; v < variants.size(); ++v) {
        const auto& ops = kernels::ops_for(variants[v].kind);
        if (variants[v].set_tier) kernels::set_active_tier(variants[v].tier);
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < reps[v]; ++i) one_pass(z, ops, b);
        const double s =
            std::chrono::duration<double>(Clock::now() - t0).count();
        best_s[v] = std::min(best_s[v], s);
      }
    }
    benchmark::DoNotOptimize(b.out.data());
    benchmark::DoNotOptimize(b.gi.data());
    for (std::size_t v = 0; v < variants.size(); ++v) {
      Measurement m;
      m.gflops = flops * static_cast<double>(reps[v]) / best_s[v] / 1e9;
      m.us_per_pass = best_s[v] / static_cast<double>(reps[v]) * 1e6;
      results()[{z.name, variants[v].name}] = m;
    }
  }
  // Leave the dispatcher where an unforced process would run: the highest
  // measured tier (the forced tier when pinned).
  kernels::set_active_tier(tiers_to_measure().back());
}

void register_all() {
  for (const auto& z : zoo_shapes()) {
    const std::string name = "kernel_throughput/" + z.name;
    benchmark::RegisterBenchmark(
        name.c_str(), [&z](benchmark::State& s) { run_shape_all(s, z); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

std::string variant_of(kernels::IsaTier tier) {
  return std::string("blocked@") + kernels::isa_tier_name(tier);
}

void finalize() {
  const auto& res = results();
  if (res.empty()) return;
  const auto& tiers = tiers_to_measure();
  const bool forced = std::getenv(kForceEnv) != nullptr;
  const bool multi_tier = tiers.size() > 1;  // scalar baseline available
  const bool have_avx2 =
      multi_tier && tiers.back() == kernels::IsaTier::avx2;

  std::cout << "== Kernel throughput — GFLOP/s per kernel set and ISA tier, "
               "forward+backward ==\n";
  std::cout << "cpu: " << kernels::cpu_feature_string()
            << "  detected=" << kernels::isa_tier_name(kernels::detected_tier())
            << (forced ? "  FORCED=" : "")
            << (forced ? kernels::isa_tier_name(tiers.front()) : "") << "\n";
  std::cout << std::right << std::setw(14) << "shape" << std::setw(10)
            << "naive";
  for (const auto t : tiers) {
    std::cout << std::setw(16) << variant_of(t);
  }
  std::cout << std::setw(12) << (multi_tier ? "top/scalar" : "top/naive")
            << "\n";

  // Gate state. All comparisons are like-for-like: scalar tier vs naive
  // (same ISA, 3% tolerance — the algorithmic win is 1.3-6x, so any trip
  // is real) and higher tiers vs the scalar tier (same algorithm, 10%
  // tolerance: small-problem shapes like mlp/fc2 route every tier through
  // the identical shared loops, so their ratio measures nothing but the
  // host's timing noise floor, which on shared CI runners exceeds 3% even
  // for best-of-interleaved-windows; a vector path that actually breaks
  // loses far more than 10% on the microkernel-bound shapes).
  bool scalar_never_slower = true;  // blocked@<lowest measured> vs naive
  bool tiers_never_slower = true;   // each higher tier vs blocked@scalar
  double best_conv_avx2_speedup = 0.0;

  std::string json;
  for (const auto& z : zoo_shapes()) {
    const auto naive = res.find({z.name, "naive"});
    if (naive == res.end()) continue;
    const auto base = res.find({z.name, variant_of(tiers.front())});
    if (base == res.end()) continue;
    if (base->second.gflops < 0.97 * naive->second.gflops) {
      scalar_never_slower = false;
    }
    std::cout << std::right << std::setw(14) << z.name << std::fixed
              << std::setprecision(2) << std::setw(10)
              << naive->second.gflops;
    std::string tier_json;
    double top_gflops = base->second.gflops;
    for (const auto t : tiers) {
      const auto it = res.find({z.name, variant_of(t)});
      if (it == res.end()) continue;
      std::cout << std::setw(16) << it->second.gflops;
      if (t != tiers.front() &&
          it->second.gflops < 0.90 * base->second.gflops) {
        tiers_never_slower = false;
      }
      top_gflops = it->second.gflops;
      if (!tier_json.empty()) tier_json += ", ";
      tier_json += std::string("\"") + kernels::isa_tier_name(t) +
                   "\": {\"gflops\": " + std::to_string(it->second.gflops) +
                   ", \"us_per_pass\": " +
                   std::to_string(it->second.us_per_pass) + "}";
      if (z.is_conv && have_avx2 && t == kernels::IsaTier::avx2) {
        best_conv_avx2_speedup =
            std::max(best_conv_avx2_speedup,
                     it->second.gflops / base->second.gflops);
      }
    }
    const double top_ratio =
        top_gflops /
        (multi_tier ? base->second.gflops : naive->second.gflops);
    std::cout << std::setw(12) << top_ratio << "\n";
    std::cout.unsetf(std::ios::fixed);
    if (!json.empty()) json += ",";
    json += "\n  {\"shape\": \"" + z.name + "\"";
    json += std::string(", \"is_conv\": ") + (z.is_conv ? "true" : "false");
    json += ", \"flops_per_pass\": " + std::to_string(shape_flops(z));
    json += ", \"naive_gflops\": " + std::to_string(naive->second.gflops);
    json += ", \"blocked\": {" + tier_json + "}}";
  }

  // The gate only judges cells that ran: a --benchmark_filter that
  // skipped every conv shape leaves the best speedup at 0.0 and must not
  // fail a run that never measured what the gate is about.
  const bool conv_gate_applies =
      have_avx2 && !forced && best_conv_avx2_speedup > 0.0;
  const bool conv_speedup_ok =
      !conv_gate_applies || best_conv_avx2_speedup >= 1.5;
  std::cout << "blocked_never_slower="
            << (scalar_never_slower ? "yes" : "NO — BLOCKED REGRESSED")
            << "\n";
  if (multi_tier) {
    std::cout << "tiers_never_slower="
              << (tiers_never_slower ? "yes" : "NO — A TIER REGRESSED")
              << "\n";
  }
  if (conv_gate_applies) {
    std::cout << "avx2_conv_best_speedup=" << std::fixed
              << std::setprecision(2) << best_conv_avx2_speedup
              << (conv_speedup_ok ? " (>= 1.5 ok)" : " — BELOW 1.5x GATE")
              << "\n";
    std::cout.unsetf(std::ios::fixed);
  }

  std::string tier_list;
  for (const auto t : tiers) {
    if (!tier_list.empty()) tier_list += ", ";
    tier_list += std::string("\"") + kernels::isa_tier_name(t) + "\"";
  }
  const auto info = kernels::dispatch_info();
  std::ofstream out("BENCH_kernel_throughput.json");
  out << "{\"bench\": \"kernel_throughput\",\n"
      << " \"workload\": \"zoo shapes + cifar-scale conv, batch=16, "
         "forward+backward\",\n"
      << " \"cpu_features\": \"" << kernels::cpu_feature_string() << "\",\n"
      << " \"detected_tier\": \""
      << kernels::isa_tier_name(kernels::detected_tier()) << "\",\n"
      << " \"forced_tier\": "
      << (forced ? std::string("\"") +
                       kernels::isa_tier_name(tiers.front()) + "\""
                 : std::string("null"))
      << ",\n"
      << " \"microkernel\": \"" << info.microkernel << "\",\n"
      << " \"tiers_measured\": [" << tier_list << "],\n"
      << " \"blocked_never_slower\": "
      << (scalar_never_slower ? "true" : "false") << ",\n"
      << " \"tiers_never_slower\": " << (tiers_never_slower ? "true" : "false")
      << ",\n"
      << " \"avx2_conv_best_speedup\": "
      << (have_avx2 ? std::to_string(best_conv_avx2_speedup) : "null") << ",\n"
      << " \"points\": [" << json << "\n]}\n";
  // std::exit skips local destructors; close explicitly or a failing gate
  // truncates the very artifact needed to diagnose it.
  out.close();
  if (!scalar_never_slower || !tiers_never_slower || !conv_speedup_ok) {
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  check_forced_isa_honored();
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  finalize();
  benchmark::Shutdown();
  return 0;
}
