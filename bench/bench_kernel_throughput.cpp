// Kernel throughput — naive vs blocked GFLOP/s on the model zoo's shapes.
//
// Sweeps every GEMM and Conv2d shape that the simulator's two
// architectures (LeNet-small on 16x16 FEMNIST-like images, the MLP head
// on 32-d sentiment embeddings) actually execute, at the training batch
// size, and times forward + backward of each under both kernel sets.
// Reports GFLOP/s per (shape, set) and the blocked/naive speedup; the
// table lands in BENCH_kernel_throughput.json.
//
// The bench is also a gate: if the blocked set is SLOWER than naive on
// any zoo shape, it exits 1 — a blocked regression must never ship
// silently as the default kernel set.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "kernels/kernels.h"
#include "stats/rng.h"

namespace {

using namespace collapois;
using Clock = std::chrono::steady_clock;

// One zoo shape: either a Conv2d layer (conv true, geometry in `conv`) or
// a Dense layer expressed as its forward GEMM [m x k] * [n x k]^T.
struct ZooShape {
  std::string name;
  bool is_conv = false;
  kernels::Conv2dShape conv;
  std::size_t m = 0, k = 0, n = 0;
};

// Shapes of nn/zoo.cpp at the default training batch size (16).
const std::vector<ZooShape>& zoo_shapes() {
  static const std::vector<ZooShape> s = {
      {"lenet/conv1", true, {16, 1, 16, 16, 4, 3, 1, 16, 16}, 0, 0, 0},
      {"lenet/conv2", true, {16, 4, 8, 8, 8, 3, 1, 8, 8}, 0, 0, 0},
      {"lenet/fc1", false, {}, 16, 128, 32},
      {"lenet/fc2", false, {}, 16, 32, 10},
      {"mlp/fc1", false, {}, 16, 32, 32},
      {"mlp/fc2", false, {}, 16, 32, 2},
  };
  return s;
}

// Forward + backward FLOPs of one shape (multiply+add counted as 2).
double shape_flops(const ZooShape& z) {
  if (z.is_conv) {
    const auto& c = z.conv;
    const double macs = static_cast<double>(c.batch) * c.cout * c.oh * c.ow *
                        c.cin * c.k * c.k;
    // forward (out) + backward (grad_weights and grad_input).
    return 2.0 * macs * 3.0;
  }
  const double macs =
      static_cast<double>(z.m) * z.k * z.n;
  // forward GEMM + the two backward GEMMs (dW, dX).
  return 2.0 * macs * 3.0;
}

struct Measurement {
  double gflops = 0.0;
  double us_per_pass = 0.0;
};

// (shape name, kernel set name) -> measurement.
std::map<std::pair<std::string, std::string>, Measurement>& results() {
  static std::map<std::pair<std::string, std::string>, Measurement> r;
  return r;
}

// One forward + backward pass of the shape under the given kernel set.
struct ShapeBuffers {
  std::vector<float> in, weights, bias, out, go, gw, gb, gi;
};

ShapeBuffers make_buffers(const ZooShape& z, stats::Rng& rng) {
  ShapeBuffers b;
  auto fill = [&](std::vector<float>& v, std::size_t n) {
    v.resize(n);
    for (auto& x : v) x = static_cast<float>(rng.normal());
  };
  if (z.is_conv) {
    const auto& c = z.conv;
    fill(b.in, c.batch * c.cin * c.h * c.w);
    fill(b.weights, c.cout * c.cin * c.k * c.k);
    fill(b.bias, c.cout);
    fill(b.go, c.batch * c.cout * c.oh * c.ow);
    b.out.resize(b.go.size());
    b.gw.assign(b.weights.size(), 0.0f);
    b.gb.assign(b.bias.size(), 0.0f);
    b.gi.assign(b.in.size(), 0.0f);
  } else {
    fill(b.in, z.m * z.k);          // activations [m x k]
    fill(b.weights, z.n * z.k);     // dense W [n x k]
    fill(b.bias, z.n);
    fill(b.go, z.m * z.n);
    b.out.resize(z.m * z.n);
    b.gw.assign(b.weights.size(), 0.0f);
    b.gb.assign(b.bias.size(), 0.0f);
    b.gi.assign(z.m * z.k, 0.0f);
  }
  return b;
}

void one_pass(const ZooShape& z, const kernels::KernelOps& ops,
              ShapeBuffers& b) {
  if (z.is_conv) {
    ops.conv2d_forward(z.conv, b.in.data(), b.weights.data(), b.bias.data(),
                       b.out.data());
    std::fill(b.gi.begin(), b.gi.end(), 0.0f);
    ops.conv2d_backward(z.conv, b.in.data(), b.weights.data(), b.go.data(),
                        b.gw.data(), b.gb.data(), b.gi.data());
  } else {
    std::fill(b.out.begin(), b.out.end(), 0.0f);
    ops.gemm_a_bt_accum(b.in.data(), b.weights.data(), b.out.data(), z.m, z.k,
                        z.n, b.bias.data(), nullptr);
    ops.gemm_at_b_accum(b.go.data(), b.in.data(), b.gw.data(), z.m, z.n, z.k,
                        b.gb.data());
    ops.gemm(b.go.data(), b.weights.data(), b.gi.data(), z.m, z.n, z.k,
             nullptr);
  }
}

void run_shape(benchmark::State& state, const ZooShape& z,
               kernels::KernelKind kind) {
  const auto& ops = kernels::ops_for(kind);
  stats::Rng rng(2024);
  ShapeBuffers b = make_buffers(z, rng);
  const double flops = shape_flops(z);
  for (auto _ : state) {
    // Warm the workspace (first call allocates scratch), then time enough
    // passes for a stable reading.
    one_pass(z, ops, b);
    std::size_t reps = 8;
    double elapsed_s = 0.0;
    for (;;) {
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < reps; ++i) one_pass(z, ops, b);
      elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();
      if (elapsed_s >= 0.05 || reps >= (1u << 20)) break;
      reps *= 4;
    }
    // Best of five windows: the min is robust against scheduler/steal
    // noise that a single mean window folds straight into the ratio.
    for (int w = 1; w < 5; ++w) {
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < reps; ++i) one_pass(z, ops, b);
      const double s =
          std::chrono::duration<double>(Clock::now() - t0).count();
      elapsed_s = std::min(elapsed_s, s);
    }
    benchmark::DoNotOptimize(b.out.data());
    benchmark::DoNotOptimize(b.gi.data());
    Measurement m;
    m.gflops = flops * static_cast<double>(reps) / elapsed_s / 1e9;
    m.us_per_pass = elapsed_s / static_cast<double>(reps) * 1e6;
    results()[{z.name, ops.name}] = m;
    state.counters["GFLOP/s"] = m.gflops;
  }
}

void register_all() {
  for (const auto& z : zoo_shapes()) {
    for (const auto kind :
         {kernels::KernelKind::naive, kernels::KernelKind::blocked}) {
      const std::string name = "kernel_throughput/" + z.name + "/" +
                               kernels::kernel_kind_name(kind);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&z, kind](benchmark::State& s) { run_shape(s, z, kind); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void finalize() {
  const auto& res = results();
  if (res.empty()) return;

  std::cout << "== Kernel throughput — naive vs blocked, forward+backward, "
               "zoo shapes ==\n";
  std::cout << std::right << std::setw(14) << "shape" << std::setw(14)
            << "naive GF/s" << std::setw(14) << "blocked GF/s" << std::setw(10)
            << "speedup" << "\n";
  bool blocked_never_slower = true;
  std::string json = "";
  for (const auto& z : zoo_shapes()) {
    const auto naive = res.find({z.name, "naive"});
    const auto blocked = res.find({z.name, "blocked"});
    if (naive == res.end() || blocked == res.end()) continue;
    const double speedup = blocked->second.gflops / naive->second.gflops;
    // Shapes under the small-problem cutoff run the IDENTICAL naive code
    // in both sets, so their ratio is pure timer noise around 1.0; gate
    // with a 3% tolerance so only real regressions trip it.
    if (speedup < 0.97) blocked_never_slower = false;
    std::cout << std::right << std::setw(14) << z.name << std::fixed
              << std::setprecision(2) << std::setw(14)
              << naive->second.gflops << std::setw(14)
              << blocked->second.gflops << std::setw(10) << speedup << "\n";
    std::cout.unsetf(std::ios::fixed);
    if (!json.empty()) json += ",";
    json += "\n  {\"shape\": \"" + z.name + "\"";
    json += ", \"flops_per_pass\": " + std::to_string(shape_flops(z));
    json += ", \"naive_gflops\": " + std::to_string(naive->second.gflops);
    json += ", \"blocked_gflops\": " + std::to_string(blocked->second.gflops);
    json += ", \"blocked_us_per_pass\": " +
            std::to_string(blocked->second.us_per_pass);
    json += ", \"speedup\": " + std::to_string(speedup) + "}";
  }
  std::cout << "blocked_never_slower="
            << (blocked_never_slower ? "yes" : "NO — BLOCKED REGRESSED")
            << "\n";

  std::ofstream out("BENCH_kernel_throughput.json");
  out << "{\"bench\": \"kernel_throughput\",\n"
      << " \"workload\": \"zoo shapes, batch=16, forward+backward\",\n"
      << " \"blocked_never_slower\": "
      << (blocked_never_slower ? "true" : "false") << ",\n \"points\": ["
      << json << "\n]}\n";
  if (!blocked_never_slower) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  finalize();
  benchmark::Shutdown();
  return 0;
}
