// Fig. 13 — Benign AC and Attack SR as a function of training round
// (FEMNIST, alpha = 0.01, 1% compromised): CollaPois converges fast and
// holds; MRepl spikes abruptly (the detectable shift) ; DPois and DBA
// build slowly.
#include <iomanip>
#include <iostream>
#include <map>

#include "bench_common.h"

namespace {

using namespace collapois;

struct Point {
  std::size_t round;
  double benign_ac;
  double attack_sr;
};

std::map<std::string, std::vector<Point>>& curves() {
  static std::map<std::string, std::vector<Point>> c;
  return c;
}

void run_point(benchmark::State& state, sim::AttackKind attack) {
  sim::ExperimentConfig cfg =
      bench::base_config(sim::DatasetKind::femnist_like);
  cfg.attack = attack;
  // The paper plots alpha = 0.01; at simulator scale that regime hits the
  // auxiliary class-coverage artifact (see EXPERIMENTS.md, Fig. 15 note)
  // and every attack's trajectory is dominated by it, so the longevity
  // comparison is run at the next diversity level.
  cfg.alpha = 0.1;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  cfg.eval_every = 20;
  cfg.eval_max_clients = 30;  // per-round tracking on a client subsample
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg);
    auto& curve = curves()[sim::attack_name(attack)];
    for (const auto& rec : r.rounds) {
      if (rec.population.has_value()) {
        curve.push_back({rec.round, rec.population->benign_ac,
                         rec.population->attack_sr});
      }
    }
    bench::report_counters(state, r);
  }
}

void register_all() {
  for (sim::AttackKind attack :
       {sim::AttackKind::collapois, sim::AttackKind::mrepl,
        sim::AttackKind::dpois, sim::AttackKind::dba}) {
    const std::string name =
        std::string("fig13/") + sim::attack_name(attack);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [attack](benchmark::State& s) { run_point(s, attack); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

void print_table() {
  std::cout << "== Fig. 13 — Benign AC / Attack SR vs round (FEMNIST, "
               "alpha=0.1, 1% compromised) ==\n";
  for (const auto& [attack, curve] : curves()) {
    std::cout << "-- " << attack << " --\n";
    std::cout << std::right << std::setw(8) << "round" << std::setw(12)
              << "benign_ac" << std::setw(12) << "attack_sr" << "\n";
    for (const auto& p : curve) {
      std::cout << std::right << std::setw(8) << p.round << std::fixed
                << std::setprecision(4) << std::setw(12) << p.benign_ac
                << std::setw(12) << p.attack_sr << "\n";
      std::cout.unsetf(std::ios::fixed);
    }
  }
  std::cout << "(paper shape: CollaPois rises quickly after the strike and "
               "stays high; MRepl shows abrupt jumps; DPois/DBA climb "
               "slowly)\n";
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  benchmark::Shutdown();
  return 0;
}
