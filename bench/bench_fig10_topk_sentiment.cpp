// Figs. 10 / 17 / 19 / 21 / 23 — CollaPois with small compromised
// fractions (0.1% and 0.5% analogues) under defenses on Sentiment, with
// client-level reporting: population average plus the top-1% / top-25% /
// top-50% infected-client groups (Eq. 8 ranking).
//
// Paper finding: population averages look safe, but the top-25% infected
// clients still suffer ~86% Attack SR at 0.5% compromised — defenses that
// "work" on average leave a heavily-infected tail.
#include <iomanip>
#include <iostream>

#include "bench_common.h"

namespace {

using namespace collapois;

struct Row {
  std::string label;
  double all_sr;
  double top1_sr;
  double top25_sr;
  double top50_sr;
  double benign_ac;
};

std::vector<Row>& rows() {
  static std::vector<Row> r;
  return r;
}

void run_point(benchmark::State& state, const std::string& level,
               defense::DefenseKind def, double alpha) {
  sim::ExperimentConfig cfg =
      bench::base_config(sim::DatasetKind::sentiment_like);
  cfg.attack = sim::AttackKind::collapois;
  cfg.defense = def;
  cfg.alpha = alpha;
  cfg.compromised_fraction = bench::paper_fraction(level);
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg);
    Row row;
    row.label = std::string(defense::defense_name(def)) + " c=" + level +
                " a=" + std::to_string(alpha);
    row.all_sr = r.population.attack_sr;
    row.top1_sr = metrics::average_top_k(r.final_evals, 1).attack_sr;
    row.top25_sr = metrics::average_top_k(r.final_evals, 25).attack_sr;
    row.top50_sr = metrics::average_top_k(r.final_evals, 50).attack_sr;
    row.benign_ac = r.population.benign_ac;
    rows().push_back(row);
    state.counters["top25_sr"] = row.top25_sr;
    bench::report_counters(state, r);
  }
}

void register_all() {
  for (const char* level : {"0.1%", "0.5%"}) {
    for (defense::DefenseKind def :
         {defense::DefenseKind::none, defense::DefenseKind::dp,
          defense::DefenseKind::norm_bound}) {
      for (double alpha : {0.01, 1.0, 100.0}) {
        const std::string name = std::string("fig10/c") + level + "/" +
                                 defense::defense_name(def) + "/alpha" +
                                 std::to_string(alpha);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [level = std::string(level), def, alpha](benchmark::State& s) {
              run_point(s, level, def, alpha);
            })
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
      }
    }
  }
}

void print_table() {
  std::cout << "== Figs. 10/17/19/21/23 — top-k%% infected clients "
               "(Sentiment, CollaPois) ==\n";
  std::cout << std::left << std::setw(36) << "series" << std::right
            << std::setw(10) << "benign_ac" << std::setw(9) << "all_sr"
            << std::setw(9) << "top1" << std::setw(9) << "top25"
            << std::setw(9) << "top50" << "\n";
  for (const auto& r : rows()) {
    std::cout << std::left << std::setw(36) << r.label << std::right
              << std::fixed << std::setprecision(3) << std::setw(10)
              << r.benign_ac << std::setw(9) << r.all_sr << std::setw(9)
              << r.top1_sr << std::setw(9) << r.top25_sr << std::setw(9)
              << r.top50_sr << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "(paper shape: top-1 >= top-25 >= top-50 >= all; the top-25%% "
               "tail stays heavily infected even at 0.1-0.5%% compromised)\n";
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  benchmark::Shutdown();
  return 0;
}
