// Fig. 6 — Attack stealthiness: with psi ~ U[0.95, 0.99] and a tuned
// clip bound, the angles (and magnitudes) of malicious gradients against
// a sampled-gradient background blend into the benign population.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "core/stealth.h"
#include "metrics/telemetry.h"
#include "stats/geometry.h"
#include "stats/summary.h"

namespace {

using namespace collapois;

struct Row {
  const char* series;
  double angle_mean;
  double angle_var;
  double norm_mean;
};

std::vector<Row>& rows() {
  static std::vector<Row> r;
  return r;
}

void stealth_campaign(benchmark::State& state) {
  sim::ExperimentConfig cfg =
      bench::base_config(sim::DatasetKind::femnist_like);
  cfg.attack = sim::AttackKind::collapois;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  cfg.alpha = 0.1;
  cfg.collapois.psi_a = 0.95;
  cfg.collapois.psi_b = 0.99;
  // Full Section IV-D blending: direction mixed with the clean gradient,
  // magnitude drawn from the clean-gradient distribution.
  cfg.collapois.blend_fraction = 0.3;
  cfg.collapois.mimic_benign_norm = true;
  cfg.rounds = 80 * bench::scale();
  cfg.sample_prob = 0.15;
  sim::RunOptions opt;
  opt.keep_telemetry = true;

  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg, opt);
    // Pool every round's updates after the strike; compare malicious and
    // benign features against the benign (background) population.
    std::vector<tensor::FlatVec> benign;
    std::vector<tensor::FlatVec> malicious;
    for (const auto& t : r.telemetry) {
      const auto split = metrics::split_updates(t);
      benign.insert(benign.end(), split.benign.begin(), split.benign.end());
      malicious.insert(malicious.end(), split.malicious.begin(),
                       split.malicious.end());
    }
    if (benign.size() < 2 || malicious.empty()) continue;

    const core::BlendReport rep = core::measure_blend(benign, malicious);
    rows().push_back({"benign", rep.benign_angle_mean, rep.benign_angle_var,
                      rep.benign_norm_mean});
    rows().push_back({"malicious (psi~U[0.95,0.99], blended)",
                      rep.malicious_angle_mean, rep.malicious_angle_var,
                      rep.malicious_norm_mean});
    state.counters["angle_gap"] =
        std::fabs(rep.malicious_angle_mean - rep.benign_angle_mean);
    state.counters["attack_sr"] = r.population.attack_sr;
  }
}
BENCHMARK(stealth_campaign)->Iterations(1)->Unit(benchmark::kSecond);

void print_table() {
  std::cout << "== Fig. 6 — angle/magnitude blending of malicious vs benign "
               "gradients ==\n";
  std::cout << std::left << std::setw(40) << "series" << std::right
            << std::setw(12) << "angle_mean" << std::setw(12) << "angle_var"
            << std::setw(12) << "norm_mean" << "\n";
  for (const auto& r : rows()) {
    std::cout << std::left << std::setw(40) << r.series << std::right
              << std::fixed << std::setprecision(4) << std::setw(12)
              << r.angle_mean << std::setw(12) << r.angle_var << std::setw(12)
              << r.norm_mean << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "(paper shape: compromised and benign rows blended — similar "
               "means and variances)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  benchmark::Shutdown();
  return 0;
}
