// Figs. 25 / 18 / 20 / 22 / 24 — the FEMNIST counterpart of the top-k%
// client-level sweeps: CollaPois with 0.1% / 0.5% compromised-fraction
// analogues under defenses across the three FL algorithms, reporting the
// top-1% / 25% / 50% infected-client groups.
#include <iomanip>
#include <iostream>

#include "bench_common.h"

namespace {

using namespace collapois;

struct Row {
  std::string label;
  double all_sr;
  double top1_sr;
  double top25_sr;
  double top50_sr;
  double benign_ac;
};

std::vector<Row>& rows() {
  static std::vector<Row> r;
  return r;
}

void run_point(benchmark::State& state, sim::AlgorithmKind algo,
               const std::string& level, defense::DefenseKind def,
               double alpha) {
  sim::ExperimentConfig cfg =
      bench::base_config(sim::DatasetKind::femnist_like);
  cfg.algorithm = algo;
  cfg.attack = sim::AttackKind::collapois;
  cfg.defense = def;
  cfg.alpha = alpha;
  cfg.compromised_fraction = bench::paper_fraction(level);
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg);
    Row row;
    row.label = std::string(sim::algorithm_name(algo)) + "/" +
                defense::defense_name(def) + " c=" + level + " a=" +
                std::to_string(alpha);
    row.all_sr = r.population.attack_sr;
    row.top1_sr = metrics::average_top_k(r.final_evals, 1).attack_sr;
    row.top25_sr = metrics::average_top_k(r.final_evals, 25).attack_sr;
    row.top50_sr = metrics::average_top_k(r.final_evals, 50).attack_sr;
    row.benign_ac = r.population.benign_ac;
    rows().push_back(row);
    state.counters["top25_sr"] = row.top25_sr;
    bench::report_counters(state, r);
  }
}

void register_all() {
  for (sim::AlgorithmKind algo :
       {sim::AlgorithmKind::fedavg, sim::AlgorithmKind::feddc,
        sim::AlgorithmKind::metafed}) {
    for (const char* level : {"0.1%", "0.5%"}) {
      for (double alpha : {0.01, 1.0, 100.0}) {
        const std::string name = std::string("fig25/") +
                                 sim::algorithm_name(algo) + "/c" + level +
                                 "/alpha" + std::to_string(alpha);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [algo, level = std::string(level), alpha](benchmark::State& s) {
              run_point(s, algo, level, defense::DefenseKind::dp, alpha);
            })
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
      }
    }
  }
}

void print_table() {
  std::cout << "== Figs. 25/18/20/22/24 — top-k%% infected clients (FEMNIST, "
               "CollaPois, DP defense) ==\n";
  std::cout << std::left << std::setw(40) << "series" << std::right
            << std::setw(10) << "benign_ac" << std::setw(9) << "all_sr"
            << std::setw(9) << "top1" << std::setw(9) << "top25"
            << std::setw(9) << "top50" << "\n";
  for (const auto& r : rows()) {
    std::cout << std::left << std::setw(40) << r.label << std::right
              << std::fixed << std::setprecision(3) << std::setw(10)
              << r.benign_ac << std::setw(9) << r.all_sr << std::setw(9)
              << r.top1_sr << std::setw(9) << r.top25_sr << std::setw(9)
              << r.top50_sr << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "(paper shape: even small compromised fractions leave a "
               "heavily infected top-k tail; MetaFed's top-1%% exceeds "
               "99%% in the paper)\n";
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  benchmark::Shutdown();
  return 0;
}
