// Fig. 15 — the FEMNIST counterpart of Fig. 8: FedAvg, FedDC, and MetaFed
// under the four attacks with 1% compromised clients, across alpha.
#include "bench_common.h"

namespace {

using namespace collapois;
using bench::SeriesTable;

SeriesTable& table() {
  static SeriesTable t(
      "Fig. 15 — attacks x FL algorithms x alpha (FEMNIST, 1% compromised)");
  return t;
}

void run_point(benchmark::State& state, sim::AlgorithmKind algo,
               sim::AttackKind attack, double alpha) {
  sim::ExperimentConfig cfg =
      bench::base_config(sim::DatasetKind::femnist_like);
  cfg.algorithm = algo;
  cfg.attack = attack;
  cfg.alpha = alpha;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg);
    bench::report_counters(state, r);
    table().add(std::string(sim::algorithm_name(algo)) + "/" +
                    sim::attack_name(attack) + " a=" + std::to_string(alpha),
                r.population.benign_ac, r.population.attack_sr);
  }
}

void register_all() {
  for (sim::AlgorithmKind algo :
       {sim::AlgorithmKind::fedavg, sim::AlgorithmKind::feddc,
        sim::AlgorithmKind::metafed}) {
    for (sim::AttackKind attack :
         {sim::AttackKind::collapois, sim::AttackKind::dpois,
          sim::AttackKind::mrepl, sim::AttackKind::dba}) {
      for (double alpha : {0.01, 1.0, 100.0}) {
        const std::string name = std::string("fig15/") +
                                 sim::algorithm_name(algo) + "/" +
                                 sim::attack_name(attack) + "/alpha" +
                                 std::to_string(alpha);
        benchmark::RegisterBenchmark(
            name.c_str(), [algo, attack, alpha](benchmark::State& s) {
              run_point(s, algo, attack, alpha);
            })
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
