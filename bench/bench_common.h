// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary follows the same pattern: register one
// google-benchmark case per series point of the paper figure, run the
// experiment inside the benchmark body (a single iteration — the measured
// quantity is the full federated campaign), expose Benign AC / Attack SR
// as counters, and print a paper-style series table at exit.
//
// COLLAPOIS_SCALE=k (k = 1, 2, 3, ...) multiplies clients and rounds for
// higher-fidelity runs; defaults are sized for a 1-core CI box.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "sim/report.h"
#include "sim/runner.h"

namespace collapois::bench {

inline std::size_t scale() {
  const char* env = std::getenv("COLLAPOIS_SCALE");
  if (env == nullptr) return 1;
  const long v = std::strtol(env, nullptr, 10);
  return v >= 1 ? static_cast<std::size_t>(v) : 1;
}

// Base experiment sized to the bench budget; benches override fields.
inline sim::ExperimentConfig base_config(sim::DatasetKind dataset) {
  sim::ExperimentConfig cfg;
  cfg.dataset = dataset;
  const std::size_t s = scale();
  cfg.n_clients = 100 * s;
  cfg.rounds = 200 * s;
  cfg.seed = 1234;
  return cfg;
}

// The paper compromises 0.1% / 0.5% / 1% of 3,400-5,600 clients over
// 1000+ rounds; the scale-preserving quantity is the total malicious
// pull mass T * |C| / N (see EXPERIMENTS.md). These fractions reproduce
// the paper's mass levels at the simulator's round budget.
inline double paper_fraction(const std::string& label) {
  if (label == "0.1%") return 0.01;
  if (label == "0.5%") return 0.025;
  if (label == "1%") return 0.05;
  throw std::invalid_argument("paper_fraction: unknown level " + label);
}

// Collected series rows printed as the figure table at exit.
class SeriesTable {
 public:
  explicit SeriesTable(std::string title) : title_(std::move(title)) {}
  ~SeriesTable() {
    if (!rows_.empty()) sim::print_series(std::cout, title_, rows_);
  }

  void add(const std::string& label, double benign_ac, double attack_sr) {
    const std::lock_guard<std::mutex> lock(mu_);
    rows_.push_back({label, benign_ac, attack_sr});
  }

 private:
  std::string title_;
  std::mutex mu_;
  std::vector<sim::SeriesRow> rows_;
};

inline void report_counters(benchmark::State& state,
                            const sim::ExperimentResult& result) {
  state.counters["benign_ac"] = result.population.benign_ac;
  state.counters["attack_sr"] = result.population.attack_sr;
}

}  // namespace collapois::bench
