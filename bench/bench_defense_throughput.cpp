// Defense throughput — naive vs fast aggregation kernels on realistic
// round shapes.
//
// Sweeps cohort sizes n in {16, 64, 256} times the two model dimensions
// the simulator actually trains (LeNet-small and the MLP head, d taken
// from nn/zoo at the default configs) across every registry defense with
// a server-side hot loop (Krum, Multi-Krum, FLARE, coordinate median,
// trimmed mean, RLR, SignSGD), timing one full Aggregator::aggregate call
// per pass under both defense-kernel sets. Reports microseconds per
// aggregation and the fast/naive speedup; the table lands in
// BENCH_defense_throughput.json.
//
// The bench is also a gate: if the fast set is SLOWER than naive on any
// (defense, n, d) point, it exits 1 — a fast-path regression must never
// ship silently as the default defense impl.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "defense/defense_kernels.h"
#include "defense/flare.h"
#include "defense/krum.h"
#include "defense/median.h"
#include "defense/rlr.h"
#include "fl/aggregator.h"
#include "kernels/cpu_dispatch.h"
#include "nn/zoo.h"
#include "stats/rng.h"

namespace {

using namespace collapois;
using Clock = std::chrono::steady_clock;

struct ModelDim {
  std::string name;
  std::size_t d;
};

// The two architectures the simulator trains, at their default configs.
const std::vector<ModelDim>& model_dims() {
  static const std::vector<ModelDim> dims = {
      {"lenet", nn::make_lenet_small({}).num_parameters()},
      {"mlp", nn::make_mlp_head({}).num_parameters()},
  };
  return dims;
}

const std::vector<std::size_t>& cohort_sizes() {
  static const std::vector<std::size_t> sizes = {16, 64, 256};
  return sizes;
}

struct DefenseCase {
  std::string name;
  std::function<std::unique_ptr<fl::Aggregator>()> make;
};

const std::vector<DefenseCase>& defense_cases() {
  static const std::vector<DefenseCase> cases = {
      {"krum",
       [] {
         return std::make_unique<defense::KrumAggregator>(
             defense::KrumConfig{1, 1});
       }},
      {"multi-krum",
       [] {
         return std::make_unique<defense::KrumAggregator>(
             defense::KrumConfig{1, 4});
       }},
      {"flare",
       [] {
         return std::make_unique<defense::FlareAggregator>(
             defense::FlareConfig{1.0});
       }},
      {"median",
       [] { return std::make_unique<defense::CoordMedianAggregator>(); }},
      {"trimmed-mean",
       [] { return std::make_unique<defense::TrimmedMeanAggregator>(0.2); }},
      {"rlr",
       [] {
         return std::make_unique<defense::RlrAggregator>(
             defense::RlrConfig{2.0});
       }},
      {"signsgd",
       [] {
         return std::make_unique<defense::SignSgdAggregator>(
             defense::SignSgdConfig{0.01});
       }},
  };
  return cases;
}

std::vector<fl::ClientUpdate> random_updates(std::size_t n, std::size_t d,
                                             std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<fl::ClientUpdate> updates(n);
  for (std::size_t i = 0; i < n; ++i) {
    updates[i].client_id = i;
    updates[i].delta.resize(d);
    for (auto& v : updates[i].delta) {
      v = static_cast<float>(rng.normal(0.0, 0.1));
    }
  }
  return updates;
}

std::string point_name(const std::string& defense, std::size_t n,
                       const std::string& model) {
  return defense + "/n" + std::to_string(n) + "/" + model;
}

// (point name, impl name) -> microseconds per aggregate call.
std::map<std::pair<std::string, std::string>, double>& results() {
  static std::map<std::pair<std::string, std::string>, double> r;
  return r;
}

// Time `reps` aggregate calls under `impl` and return elapsed seconds.
double time_window(fl::Aggregator& agg,
                   const std::vector<fl::ClientUpdate>& updates,
                   defense::DefenseImpl impl, std::size_t reps) {
  defense::set_active_defense_impl(impl);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < reps; ++i) {
    tensor::FlatVec out = agg.aggregate(updates, {});
    benchmark::DoNotOptimize(out.data());
  }
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void run_point(benchmark::State& state, const DefenseCase& dc, std::size_t n,
               const ModelDim& dim) {
  const auto updates = random_updates(n, dim.d, 9000 + n + dim.d);
  auto agg = dc.make();
  for (auto _ : state) {
    // Calibrate reps on the naive side (never the faster one) until a
    // window is long enough for a stable reading.
    std::size_t reps = 1;
    double naive_s = time_window(*agg, updates, defense::DefenseImpl::naive,
                                 reps);  // doubles as warm-up
    while (naive_s < 0.05 && reps < (1u << 20)) {
      reps *= 4;
      naive_s = time_window(*agg, updates, defense::DefenseImpl::naive, reps);
    }
    // Best-of-five windows per impl, naive and fast interleaved: the min
    // is robust against scheduler noise, and alternating the impls keeps
    // slow clock drift out of the ratio (back-to-back runs fold it in).
    double fast_s = time_window(*agg, updates, defense::DefenseImpl::fast,
                                reps);
    for (int w = 1; w < 5; ++w) {
      naive_s = std::min(
          naive_s,
          time_window(*agg, updates, defense::DefenseImpl::naive, reps));
      fast_s = std::min(
          fast_s, time_window(*agg, updates, defense::DefenseImpl::fast, reps));
    }
    const double naive_us = naive_s / static_cast<double>(reps) * 1e6;
    const double fast_us = fast_s / static_cast<double>(reps) * 1e6;
    const std::string point = point_name(dc.name, n, dim.name);
    results()[{point, "naive"}] = naive_us;
    results()[{point, "fast"}] = fast_us;
    state.counters["naive_us"] = naive_us;
    state.counters["fast_us"] = fast_us;
    state.counters["speedup"] = naive_us / fast_us;
  }
  defense::set_active_defense_impl(defense::DefenseImpl::fast);
}

void register_all() {
  for (const auto& dc : defense_cases()) {
    for (const std::size_t n : cohort_sizes()) {
      for (const auto& dim : model_dims()) {
        const std::string name =
            "defense_throughput/" + point_name(dc.name, n, dim.name);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&dc, n, &dim](benchmark::State& s) { run_point(s, dc, n, dim); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void finalize() {
  const auto& res = results();
  if (res.empty()) return;

  std::cout << "== Defense throughput — naive vs fast, one aggregate call "
               "==\n";
  std::cout << std::right << std::setw(24) << "point" << std::setw(14)
            << "naive us" << std::setw(14) << "fast us" << std::setw(10)
            << "speedup" << "\n";
  bool fast_never_slower = true;
  std::string json = "";
  for (const auto& dc : defense_cases()) {
    for (const std::size_t n : cohort_sizes()) {
      for (const auto& dim : model_dims()) {
        const std::string point = point_name(dc.name, n, dim.name);
        const auto naive = res.find({point, "naive"});
        const auto fast = res.find({point, "fast"});
        if (naive == res.end() || fast == res.end()) continue;
        const double speedup = naive->second / fast->second;
        // Small points are dominated by the shared UpdateMatrix build and
        // the aggregate epilogue, so their ratio hovers at 1.0; gate with
        // a 3% tolerance so only real regressions trip it.
        if (speedup < 0.97) fast_never_slower = false;
        std::cout << std::right << std::setw(24) << point << std::fixed
                  << std::setprecision(1) << std::setw(14) << naive->second
                  << std::setw(14) << fast->second << std::setprecision(2)
                  << std::setw(10) << speedup << "\n";
        std::cout.unsetf(std::ios::fixed);
        if (!json.empty()) json += ",";
        json += "\n  {\"defense\": \"" + dc.name + "\"";
        json += ", \"n\": " + std::to_string(n);
        json += ", \"model\": \"" + dim.name + "\"";
        json += ", \"d\": " + std::to_string(dim.d);
        json += ", \"naive_us\": " + std::to_string(naive->second);
        json += ", \"fast_us\": " + std::to_string(fast->second);
        json += ", \"speedup\": " + std::to_string(speedup) + "}";
      }
    }
  }
  std::cout << "fast_never_slower="
            << (fast_never_slower ? "yes" : "NO — FAST REGRESSED") << "\n";

  std::ofstream out("BENCH_defense_throughput.json");
  out << "{\"bench\": \"defense_throughput\",\n"
      << " \"workload\": \"one Aggregator::aggregate call, random updates\",\n"
      << " \"cpu_features\": \"" << kernels::cpu_feature_string() << "\",\n"
      << " \"isa_tier\": \""
      << kernels::isa_tier_name(kernels::active_tier()) << "\",\n"
      << " \"forced_tier\": "
      << (std::getenv("COLLAPOIS_FORCE_ISA") != nullptr
              ? std::string("\"") +
                    kernels::isa_tier_name(kernels::active_tier()) + "\""
              : std::string("null"))
      << ",\n"
      << " \"fast_never_slower\": " << (fast_never_slower ? "true" : "false")
      << ",\n \"points\": [" << json << "\n]}\n";
  // std::exit skips local destructors; close explicitly or a failing gate
  // truncates the very artifact needed to diagnose it.
  out.close();
  if (!fast_never_slower) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  finalize();
  benchmark::Shutdown();
  return 0;
}
