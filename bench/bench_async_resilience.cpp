// Async resilience — the buffered-async round engine vs the synchronous
// barrier loop under churn: CollaPois vs D-Pois with 0% / 5% / 20%
// message loss on a straggler-heavy latency profile (10-400 virtual-ms
// jitter against a 60 virtual-ms report deadline, plus compute-layer
// stragglers). Under this profile the sync engine stalls — most rounds
// lose their whole cohort to the deadline and are skipped — while the
// buffered engine admits the same deliveries a cycle or two late at
// staleness-damped weight.
//
// Reported per point: Benign AC / Attack SR, effective aggregation
// throughput (non-skipped rounds per wall second), skipped rounds,
// deadline drops (sync) / stale discards (async), and total accepted
// updates. The question is twofold: does the async engine actually
// sustain throughput where sync stalls (gated: async effective rounds/s
// must be >= sync on every point of the straggler-heavy grid), and does
// CollaPois's shared-trojan pull survive staleness damping — a
// compromised update that waited two cycles is admitted at 1/3 weight,
// so the attack races the buffer (ROADMAP: CollaPois racing the buffer
// is the new attack surface).
//
// The table lands in BENCH_async_resilience.json (working directory);
// the bench exits non-zero if the throughput gate fails.
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>

#include "bench_common.h"

namespace {

using namespace collapois;

const std::vector<double>& loss_levels() {
  static const std::vector<double> l = {0.0, 0.05, 0.20};
  return l;
}

sim::ExperimentConfig workload(fl::RoundEngineKind engine,
                               sim::AttackKind attack, double loss) {
  sim::ExperimentConfig cfg =
      bench::base_config(sim::DatasetKind::sentiment_like);
  cfg.attack = attack;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  // Straggler-heavy profile: delivery jitter spans 10-400 virtual ms while
  // the sync engine's round deadline closes at 60 — most reports arrive
  // "late" for a barrier but are perfectly usable a cycle later. Compute
  // stragglers ride on top.
  cfg.net.enabled = true;
  cfg.net.loss_prob = loss;
  cfg.net.latency_min_ms = 10.0;
  cfg.net.latency_max_ms = 400.0;
  cfg.net.deadline_ms = engine == fl::RoundEngineKind::sync ? 60.0 : 0.0;
  cfg.faults.straggler_prob = 0.15;
  cfg.faults.straggler_staleness = 2;
  cfg.round_engine = engine;
  // Time-triggered cycles at the deadline cadence: aggregate whatever
  // arrived every 120 virtual ms, discard anything that went >2 rounds
  // stale (so the damping floor is weight/3).
  cfg.async.k = 0;
  cfg.async.t_ms = 120.0;
  cfg.async.max_staleness = 2;
  return cfg;
}

struct Row {
  double benign_ac = 0.0;
  double attack_sr = 0.0;
  double wall_s = 0.0;
  double eff_rounds_per_sec = 0.0;  // non-skipped rounds / wall second
  std::size_t skipped_rounds = 0;
  std::size_t deadline_dropped = 0;
  std::size_t stale_discarded = 0;
  std::size_t accepted = 0;
  std::size_t stragglers = 0;
};

std::map<std::string, Row>& table() {
  static std::map<std::string, Row> t;
  return t;
}

std::string point_label(fl::RoundEngineKind engine, sim::AttackKind attack,
                        double loss) {
  char label[64];
  std::snprintf(label, sizeof(label), "%s/%s/loss%02d",
                fl::round_engine_name(engine), sim::attack_name(attack),
                static_cast<int>(loss * 100));
  return label;
}

void run_point(benchmark::State& state, fl::RoundEngineKind engine,
               sim::AttackKind attack, double loss) {
  const sim::ExperimentConfig cfg = workload(engine, attack, loss);
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg);
    Row row;
    row.benign_ac = r.population.benign_ac;
    row.attack_sr = r.population.attack_sr;
    double wall_ms = 0.0;
    for (const auto& rec : r.rounds) {
      wall_ms += rec.wall_ms;
      row.skipped_rounds += rec.aggregate_skipped ? 1 : 0;
      row.deadline_dropped += rec.transport.deadline_dropped;
      row.stale_discarded += rec.n_stale_discarded;
      row.accepted += rec.n_accepted;
      row.stragglers += rec.n_stragglers;
    }
    row.wall_s = wall_ms / 1000.0;
    if (row.wall_s > 0.0) {
      row.eff_rounds_per_sec =
          static_cast<double>(r.rounds.size() - row.skipped_rounds) /
          row.wall_s;
    }
    table()[point_label(engine, attack, loss)] = row;
    bench::report_counters(state, r);
    state.counters["eff_rounds_per_sec"] = row.eff_rounds_per_sec;
    state.counters["skipped"] = static_cast<double>(row.skipped_rounds);
  }
}

void register_all() {
  for (fl::RoundEngineKind engine :
       {fl::RoundEngineKind::sync, fl::RoundEngineKind::buffered_async}) {
    for (sim::AttackKind attack :
         {sim::AttackKind::collapois, sim::AttackKind::dpois}) {
      for (double loss : loss_levels()) {
        const std::string name = std::string("async_resilience/") +
                                 point_label(engine, attack, loss);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [engine, attack, loss](benchmark::State& s) {
              run_point(s, engine, attack, loss);
            })
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
      }
    }
  }
}

void finalize() {
  const auto& rows = table();
  if (rows.empty()) return;
  std::cout << "== Async resilience — sync barrier vs buffered-async engine "
               "under a straggler-heavy profile (Sentiment, 1% compromised) "
               "==\n";
  std::cout << std::right << std::setw(32) << "engine/attack/loss"
            << std::setw(12) << "benign_ac" << std::setw(12) << "attack_sr"
            << std::setw(12) << "eff_rnd/s" << std::setw(9) << "skipped"
            << std::setw(9) << "dl_drop" << std::setw(9) << "stale"
            << std::setw(10) << "accepted" << "\n";
  for (const auto& [label, row] : rows) {
    std::cout << std::right << std::setw(32) << label << std::fixed
              << std::setprecision(4) << std::setw(12) << row.benign_ac
              << std::setw(12) << row.attack_sr << std::setprecision(1)
              << std::setw(12) << row.eff_rounds_per_sec;
    std::cout.unsetf(std::ios::fixed);
    std::cout << std::setw(9) << row.skipped_rounds << std::setw(9)
              << row.deadline_dropped << std::setw(9) << row.stale_discarded
              << std::setw(10) << row.accepted << "\n";
  }

  // Throughput gate: on every (attack, loss) point the buffered engine
  // must sustain at least the sync engine's effective aggregation rate —
  // the profile is built so sync stalls on its deadline, and graceful
  // degradation is the async engine's contract.
  bool gate_ok = true;
  for (sim::AttackKind attack :
       {sim::AttackKind::collapois, sim::AttackKind::dpois}) {
    for (double loss : loss_levels()) {
      const auto s = rows.find(
          point_label(fl::RoundEngineKind::sync, attack, loss));
      const auto a = rows.find(
          point_label(fl::RoundEngineKind::buffered_async, attack, loss));
      if (s == rows.end() || a == rows.end()) continue;  // filtered run
      if (a->second.eff_rounds_per_sec < s->second.eff_rounds_per_sec) {
        gate_ok = false;
        std::cerr << "FATAL: buffered_async fell below sync throughput at "
                  << sim::attack_name(attack) << "/loss" << loss << ": "
                  << a->second.eff_rounds_per_sec << " < "
                  << s->second.eff_rounds_per_sec << " eff rounds/s\n";
      }
    }
  }
  std::cout << "async_sustains_throughput=" << (gate_ok ? "yes" : "NO")
            << "\n(expected: the 60ms deadline starves the sync barrier — "
               "most cohorts miss it and the round is skipped — while the "
               "async engine admits the same deliveries a cycle late at "
               "damped weight; CollaPois's pull survives the damping "
               "wherever its updates clear the staleness cutoff)\n";

  std::ofstream out("BENCH_async_resilience.json");
  out << "{\"bench\": \"async_resilience\",\n"
      << " \"workload\": \"sentiment 1%-compromised, straggler-heavy "
         "latency (10-400ms vs 60ms sync deadline), engine x attack x "
         "loss\",\n"
      << " \"async_sustains_throughput\": " << (gate_ok ? "true" : "false")
      << ",\n \"points\": [";
  bool first = true;
  for (const auto& [label, row] : rows) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"label\": \"" << label << "\", \"benign_ac\": "
        << row.benign_ac << ", \"attack_sr\": " << row.attack_sr
        << ", \"eff_rounds_per_sec\": " << row.eff_rounds_per_sec
        << ", \"skipped_rounds\": " << row.skipped_rounds
        << ", \"deadline_dropped\": " << row.deadline_dropped
        << ", \"stale_discarded\": " << row.stale_discarded
        << ", \"accepted\": " << row.accepted
        << ", \"stragglers\": " << row.stragglers << "}";
  }
  out << "\n]}\n";
  if (!gate_ok) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  finalize();
  benchmark::Shutdown();
  return 0;
}
