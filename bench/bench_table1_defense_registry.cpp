// Table I — the robust federated training taxonomy, printed from the
// implemented defense registry, plus a micro-benchmark of each
// aggregation rule's cost per round (50 updates x 8k parameters).
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "defense/registry.h"

namespace {

using namespace collapois;

std::vector<fl::ClientUpdate> synthetic_round(std::size_t n_updates,
                                              std::size_t dim) {
  stats::Rng rng(3);
  std::vector<fl::ClientUpdate> updates(n_updates);
  for (std::size_t i = 0; i < n_updates; ++i) {
    updates[i].client_id = i;
    updates[i].delta.resize(dim);
    for (auto& v : updates[i].delta) {
      v = static_cast<float>(rng.normal(0.0, 0.1));
    }
  }
  return updates;
}

void aggregation_cost(benchmark::State& state, defense::DefenseKind kind) {
  const auto updates = synthetic_round(50, 8192);
  const tensor::FlatVec global(8192, 0.0f);
  auto agg = defense::make_defense(kind, {}, stats::Rng(4));
  for (auto _ : state) {
    auto out = agg->aggregate(updates, global);
    benchmark::DoNotOptimize(out.data());
  }
}

void register_all() {
  for (const auto& info : defense::defense_registry()) {
    const std::string name =
        std::string("table1/aggregate/") + defense::defense_name(info.kind);
    benchmark::RegisterBenchmark(
        name.c_str(), [kind = info.kind](benchmark::State& s) {
          aggregation_cost(s, kind);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

void print_table() {
  std::cout << "== Table I — robust federated training algorithms ==\n";
  std::cout << std::left << std::setw(22) << "approach" << std::setw(28)
            << "method" << std::setw(10) << "metafed?" << "description\n";
  for (const auto& info : defense::defense_registry()) {
    std::cout << std::left << std::setw(22) << info.approach << std::setw(28)
              << info.method << std::setw(10)
              << (info.applicable_to_metafed ? "yes" : "no")
              << info.description << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  benchmark::Shutdown();
  return 0;
}
