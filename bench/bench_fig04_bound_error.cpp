// Fig. 4 — Relative approximation error of the Theorem 1 lower bound on
// |C| as a function of alpha (FEMNIST). The "exact" bound uses the angle
// statistics of all benign clients' gradients against the malicious
// direction; the attacker's estimate uses only data held by compromised
// clients (partitioned into pseudo-clients with the same skew), exactly
// as the threat model allows. The paper reports marginal errors
// (2.23% at alpha = 0.01 down to 0.57% at alpha = 100).
#include <cmath>
#include <iomanip>
#include <iterator>
#include <iostream>

#include "bench_common.h"
#include "core/stealth.h"
#include "core/theory.h"
#include "core/trojan_trainer.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "nn/zoo.h"
#include "stats/geometry.h"
#include "trojan/warp_trigger.h"

namespace {

using namespace collapois;

struct Row {
  double alpha;
  double exact_fraction;
  double estimated_fraction;
  double relative_error;
  double hoeffding_eps;
};

std::vector<Row>& rows() {
  static std::vector<Row> r;
  return r;
}

void run_point(benchmark::State& state, double alpha) {
  stats::Rng rng(42);
  data::SyntheticImageGenerator gen({}, 7);
  const std::size_t n = 60 * bench::scale();
  data::FederatedData fed = data::build_federation(gen, n, 80, alpha, rng);

  nn::Model arch = nn::make_lenet_small({});
  arch.init(rng);
  const tensor::FlatVec theta = arch.get_parameters();

  // Compromised subset and the malicious direction theta - X.
  const std::size_t n_comp = std::max<std::size_t>(6, n / 10);
  const auto comp_ids = rng.sample_without_replacement(n, n_comp);
  std::vector<const data::Dataset*> comp_data;
  for (std::size_t id : comp_ids) comp_data.push_back(&fed.clients[id].train);
  data::Dataset pooled = core::pool_auxiliary_data(comp_data);

  trojan::WarpTrigger trigger({}, 9);
  core::TrojanTrainConfig tcfg;
  tcfg.sgd.epochs = 10;  // direction only; full convergence not needed
  auto trained = core::train_trojaned_model(arch, pooled, trigger, tcfg, rng);
  const tensor::FlatVec direction = tensor::sub(theta, trained.x);

  const nn::SgdConfig one_pass{.learning_rate = 0.05, .batch_size = 16,
                               .epochs = 1};

  for (auto _ : state) {
    // Exact stats: every benign client's gradient vs the direction.
    std::vector<const data::Dataset*> benign_data;
    for (std::size_t i = 0; i < n; ++i) {
      bool comp = false;
      for (std::size_t id : comp_ids) comp |= (id == i);
      if (!comp) benign_data.push_back(&fed.clients[i].train);
    }
    nn::Model scratch = nn::make_lenet_small({});
    std::vector<tensor::FlatVec> benign_grads;
    for (int rep = 0; rep < 2; ++rep) {
      auto g = core::sample_background_gradients(benign_data, scratch, theta,
                                                 one_pass, rng);
      benign_grads.insert(benign_grads.end(),
                          std::make_move_iterator(g.begin()),
                          std::make_move_iterator(g.end()));
    }
    const auto exact = core::theory::estimate_angle_stats(benign_grads,
                                                          direction);

    // Attacker estimate: pseudo-clients carved out of the compromised
    // pool with the same Dirichlet skew, re-drawn several times to grow
    // the angle sample (the attacker can resample its own data freely).
    std::vector<tensor::FlatVec> est_grads;
    for (int rep = 0; rep < 4; ++rep) {
      const auto pseudo = data::partition_dirichlet(pooled, n_comp * 3,
                                                    alpha, rng);
      std::vector<const data::Dataset*> pseudo_ptrs;
      for (const auto& p : pseudo) {
        if (!p.empty()) pseudo_ptrs.push_back(&p);
      }
      auto g = core::sample_background_gradients(pseudo_ptrs, scratch, theta,
                                                 one_pass, rng);
      est_grads.insert(est_grads.end(), std::make_move_iterator(g.begin()),
                       std::make_move_iterator(g.end()));
    }
    const auto est = core::theory::estimate_angle_stats(est_grads, direction);

    // At simulator scale the benign angles sit near pi/2 and the clamped
    // Eq. 5 bound collapses to 0 for both sides; compare the *unclamped*
    // bound values so the estimate's accuracy is visible (the paper's
    // plotted quantity is the relative gap of the estimated bound).
    const double exact_raw =
        core::theory::theorem1_fraction_raw(exact.mu, exact.sigma, 0.9, 1.0);
    const double est_raw =
        core::theory::theorem1_fraction_raw(est.mu, est.sigma, 0.9, 1.0);
    const double rel_err = std::fabs(est_raw - exact_raw) /
                           std::max(std::fabs(exact_raw), 1e-9);
    rows().push_back({alpha, exact_raw, est_raw, rel_err,
                      core::theory::theorem1_hoeffding_halfwidth(
                          est.count, 0.05)});
    state.counters["relative_error"] = rel_err;
  }
}

void register_all() {
  for (double alpha : {0.01, 0.1, 1.0, 10.0, 100.0}) {
    const std::string name = "fig04/alpha" + std::to_string(alpha);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [alpha](benchmark::State& s) { run_point(s, alpha); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

void print_table() {
  std::cout << "== Fig. 4 — Theorem 1 bound approximation error vs alpha ==\n";
  std::cout << std::right << std::setw(10) << "alpha" << std::setw(14)
            << "exact_raw" << std::setw(14) << "est_raw" << std::setw(12)
            << "rel_error" << std::setw(16) << "hoeffding_eps" << "\n";
  for (const auto& r : rows()) {
    std::cout << std::right << std::setw(10) << r.alpha << std::fixed
              << std::setprecision(4) << std::setw(14) << r.exact_fraction
              << std::setw(14) << r.estimated_fraction << std::setw(12)
              << r.relative_error << std::setw(16) << r.hoeffding_eps << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "(paper shape: error is marginal at every alpha and largest "
               "at the most diverse alpha = 0.01)\n";
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  benchmark::Shutdown();
  return 0;
}
