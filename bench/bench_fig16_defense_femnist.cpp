// Fig. 16 — the FEMNIST counterpart of Fig. 9: CollaPois (1% compromised)
// under DP, NormBound, Krum, and RLR across FL algorithms and alpha.
// Includes the paper's one promising combination: MetaFed + DP/NormBound.
#include "bench_common.h"

namespace {

using namespace collapois;
using bench::SeriesTable;

SeriesTable& table() {
  static SeriesTable t(
      "Fig. 16 — CollaPois under defenses (FEMNIST, 1% compromised)");
  return t;
}

void run_point(benchmark::State& state, sim::AlgorithmKind algo,
               defense::DefenseKind def, double alpha) {
  sim::ExperimentConfig cfg =
      bench::base_config(sim::DatasetKind::femnist_like);
  cfg.algorithm = algo;
  cfg.attack = sim::AttackKind::collapois;
  cfg.defense = def;
  cfg.alpha = alpha;
  cfg.compromised_fraction = bench::paper_fraction("1%");
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(cfg);
    bench::report_counters(state, r);
    table().add(std::string(sim::algorithm_name(algo)) + "/" +
                    defense::defense_name(def) + " a=" +
                    std::to_string(alpha),
                r.population.benign_ac, r.population.attack_sr);
  }
}

void register_all() {
  for (sim::AlgorithmKind algo :
       {sim::AlgorithmKind::fedavg, sim::AlgorithmKind::feddc,
        sim::AlgorithmKind::metafed}) {
    for (defense::DefenseKind def :
         {defense::DefenseKind::dp, defense::DefenseKind::norm_bound,
          defense::DefenseKind::krum, defense::DefenseKind::rlr}) {
      const bool aggregation_defense = (def == defense::DefenseKind::krum ||
                                        def == defense::DefenseKind::rlr);
      if (algo == sim::AlgorithmKind::metafed && aggregation_defense) {
        continue;
      }
      for (double alpha : {0.01, 1.0, 100.0}) {
        const std::string name = std::string("fig16/") +
                                 sim::algorithm_name(algo) + "/" +
                                 defense::defense_name(def) + "/alpha" +
                                 std::to_string(alpha);
        benchmark::RegisterBenchmark(
            name.c_str(), [algo, def, alpha](benchmark::State& s) {
              run_point(s, algo, def, alpha);
            })
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
